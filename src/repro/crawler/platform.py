"""The measurement platform: seed stream -> queue -> crawlers -> store.

Mirrors Figure 3: a realtime stream of URLs shared on social media is
deduplicated by the capture queue and crawled "within a couple of
minutes" from virtual machines in US and EU data centers of a public
cloud provider -- 50% of crawls from each, assigned randomly
(Section 3.2). Every capture is matched against the CMP fingerprints and
stored.

A run has two phases. The *dedup phase* walks the day stream through the
capture queue serially (the 1h/48h cooldown rules are inherently
sequential, but cheap -- dictionary lookups only). The *crawl phase*
visits every accepted URL; it is embarrassingly parallel because each
crawl's randomness is derived from per-event keys, never from shared
sequential state. Passing a :class:`~repro.crawler.executor.CrawlExecutor`
fans the crawl phase out over day-range shards; the default is the plain
serial loop.

The crawl phase has two equivalent implementations:

* the **row path** (``retain_captures=True``): full ``Capture`` objects
  through :func:`crawl_share_event`, as the tests and the toplist study
  need;
* the **compact path** (the default): :func:`crawl_share_event_compact`
  renders only the visit skeleton and yields a :class:`CompactCrawl` --
  interned ids and a fingerprint bitmask, no transaction or page
  objects -- which lands directly in the columnar
  :class:`~repro.crawler.columnar.CaptureStore`.

Both derive every observable from the same keyed draws
(:mod:`repro.web.serving`), so they are bit-identical where they
overlap; ``tests/test_columnar.py`` pins that equivalence.
"""

from __future__ import annotations

import dataclasses
import datetime as dt
import itertools
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache -> storage -> platform)
    from repro.cache import ArtifactCache, Fingerprint

from repro.crawler.browser import (
    DEFAULT_PROFILE,
    CrawlProfile,
    _schedule_domain,
    crawl_url,
)
from repro.crawler.capture import Capture, Vantage
from repro.crawler.columnar import (
    VANTAGE_IDS,
    VANTAGE_STRS,
    CaptureStore,
)
from repro.crawler.executor import (
    CrawlExecutor,
    ExecutorStats,
    ShardStats,
    WorldRef,
    partition_grouped,
    resolve_world,
    world_ref_for_backend,
)
from repro.crawler.queue import CaptureQueue
from repro.crawler.seeds import ShareEvent, SocialShareStream, StreamConfig
from repro.crawler.spill import SpillSettings, SpillingCaptureStore
from repro.det import KeyedRand, fold64, key64
from repro.detect.engine import DetectionEngine, hosts_mask
from repro.faults import (
    Clock,
    FaultSchedule,
    FaultTally,
    RetryPolicy,
    VirtualClock,
    WorkerCrash,
    run_with_retries,
)
from repro.net import publish_cache_gauges
from repro.net.psl import default_psl
from repro.obs import Observability, resolve_obs
from repro.obs.memory import publish_memory_gauges
from repro.web.serving import structural_band, visit_compact, visit_key_prefix
from repro.web.worldgen import CacheLimits, World, publish_world_cache_gauges

__all__ = [
    "CaptureStore",  # re-export: the store moved to repro.crawler.columnar
    "CompactCrawl",
    "NetographPlatform",
    "PlatformConfig",
    "PlatformStats",
    "SocialShardSpec",
    "SocialShardTask",
    "SocialShardResult",
    "crawl_share_event",
    "crawl_share_event_compact",
    "crawl_social_shard",
    "event_rng",
    "resume_social_shard",
]

_EU_CLOUD_ID = VANTAGE_IDS[Vantage("EU", "cloud")]
_US_CLOUD_ID = VANTAGE_IDS[Vantage("US", "cloud")]

#: date-ordinal -> date memo for the compact path (a run sees at most a
#: few hundred distinct days).
_DATES: Dict[int, dt.date] = {}


@dataclass(frozen=True)
class PlatformConfig:
    """Operational parameters of the platform."""

    seed: int = 23
    #: Fraction of crawls assigned to the EU cloud (the rest go US).
    eu_share: float = 0.5
    #: Keep full captures in memory (tests); otherwise only the compact
    #: observations are retained, like the real platform's database rows.
    retain_captures: bool = False
    profile: CrawlProfile = DEFAULT_PROFILE
    #: Chaos schedule injected into every crawl; ``None`` (the default)
    #: keeps the pipeline bit-identical to a build without repro.faults.
    faults: Optional[FaultSchedule] = None
    #: Backoff policy for retrying injected transient faults; ``None``
    #: records the faulted capture without retrying.
    retry: Optional[RetryPolicy] = None
    #: Spill budget for crawl-phase stores (:mod:`repro.crawler.spill`);
    #: ``None`` keeps every row resident. An execution knob like
    #: ``parallelism`` -- never fingerprinted, cannot change results.
    #: Ignored in ``retain_captures`` mode and under a fault schedule
    #: (crash checkpoints ship whole stores between workers).
    spill: Optional[SpillSettings] = None
    #: World memo-cache bounds applied inside shard workers; ``None``
    #: keeps each worker world's construction-time defaults. Eviction
    #: is bit-invisible (sites regenerate from ``(seed, rank)``).
    world_cache_limits: Optional[CacheLimits] = None


@dataclass
class PlatformStats:
    """Run counters, reported alongside the results."""

    events: int = 0
    crawls: int = 0
    failures: int = 0
    #: Fan-out details of the most recent sharded run, if any.
    executor: Optional[ExecutorStats] = None
    #: Fault/retry accounting across all runs (empty outside chaos).
    faults: FaultTally = field(default_factory=FaultTally)

    @property
    def failure_rate(self) -> float:
        return self.failures / self.crawls if self.crawls else 0.0


# ----------------------------------------------------------------------
# Per-event determinism
# ----------------------------------------------------------------------
def event_rng(seed: int, event: ShareEvent) -> KeyedRand:
    """The RNG driving one crawl's vantage and queue delay.

    Keyed on ``(seed, url, share time)`` instead of drawing from a shared
    sequential stream, so the assignment is identical no matter how many
    crawls ran before it -- the property that makes sharded execution
    bit-identical to the serial loop. Two accepted events can never
    collide on the key: the queue's 48h URL cooldown rejects a second
    submission of the same URL at the same instant.
    """
    at = event.at
    return KeyedRand(
        fold64(
            _event_prefix(seed), event.url.h64, at.toordinal(),
            at.hour * 3600 + at.minute * 60 + at.second,
        )
    )


#: Per-seed event-key prefix (the ``key64(seed, 5)`` fold state).
_EVENT_PREFIX: Dict[int, int] = {}


def _event_prefix(seed: int) -> int:
    prefix = _EVENT_PREFIX.get(seed)
    if prefix is None:
        # Benign race: key64 is pure, racing workers store equal values.
        prefix = _EVENT_PREFIX[seed] = key64(seed, 5)  # repro-lint: disable=RACE001
    return prefix


# ----------------------------------------------------------------------
# Vectorized key derivation (serial day batches)
# ----------------------------------------------------------------------
# uint64 replicas of repro.det's fold/mix: numpy uint64 arithmetic wraps
# mod 2**64 exactly like the Python-int `& _MASK` chain, and the final
# `(x >> 11) * 2**-53` float conversion is exact in both (the shifted
# value fits in 53 bits), so these produce bit-identical keys and draws.
# The per-event path (repro.det.KeyedRand) stays the source of truth --
# shard workers use it -- and tests pin the equivalence.
_U64 = np.uint64
_NP_MC = _U64(0xFF51AFD7ED558CCD)
_NP_M1 = _U64(0xBF58476D1CE4E5B9)
_NP_M2 = _U64(0x94D049BB133111EB)
_NP_GOLDEN = _U64(0x9E3779B97F4A7C15)
_S30, _S27, _S31, _S11 = _U64(30), _U64(27), _U64(31), _U64(11)


def _fold64_arr(state: int, *parts) -> "np.ndarray":
    """Vector :func:`repro.det.fold64`: one key per row of *parts*.

    *parts* are uint64 arrays or plain ints (broadcast); at least the
    first part must be an array so every operation stays in array land
    (numpy scalar ops would warn on the intended overflow).
    """
    h = _U64(state & 0xFFFFFFFFFFFFFFFF)
    for part in parts:
        v = part if isinstance(part, np.ndarray) else _U64(part)
        x = (h ^ v) * _NP_MC
        x = (x ^ (x >> _S30)) * _NP_M1
        x = (x ^ (x >> _S27)) * _NP_M2
        h = x ^ (x >> _S31)
    return h


def _draw_arr(keys: "np.ndarray", position: int) -> "np.ndarray":
    """Vector :meth:`repro.det.KeyedRand.random`: draw *position* (1-based)
    of each key's counter stream, as float64 in [0, 1)."""
    x = keys + _U64((position * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
    x = (x ^ (x >> _S30)) * _NP_M1
    x = (x ^ (x >> _S27)) * _NP_M2
    x = x ^ (x >> _S31)
    return (x >> _S11).astype(np.float64) * 1.1102230246251565e-16  # 2**-53


class CompactCrawl:
    """One crawl's outcome on the columnar path: ids and a bitmask.

    Mirrors exactly the fields of the :class:`Capture` -> observation
    compaction: the PSL-resolved final domain, the capture date as an
    ordinal, the vantage table id, the fingerprint mask of the kept
    transactions' hosts, and the fault/failure accounting fields the
    platform meters. ``fault`` doubles as the retry-loop hook
    (:func:`repro.faults.run_with_retries` duck-types on it).
    """

    __slots__ = (
        "capture_id", "domain", "date_ordinal", "vantage_id", "status",
        "mask", "n_requests", "timed_out", "fault",
    )

    def __init__(
        self,
        capture_id: int,
        domain: str,
        date_ordinal: int,
        vantage_id: int,
        status: Optional[int],
        mask: int,
        n_requests: int,
        timed_out: bool,
        fault: Optional[str],
    ):
        self.capture_id = capture_id
        self.domain = domain
        self.date_ordinal = date_ordinal
        self.vantage_id = vantage_id
        self.status = status
        self.mask = mask
        self.n_requests = n_requests
        self.timed_out = timed_out
        self.fault = fault

    @property
    def succeeded(self) -> bool:
        return self.status is not None and 200 <= self.status < 400


#: host -> registrable-domain memo. PSL mapping is world-independent,
#: so one process-wide table serves every run.
_DOMAIN_MEMO: Dict[str, str] = {}


def _final_domain(host: str) -> str:
    """PSL-registrable domain of *host* (the paper's counting unit)."""
    domain = _DOMAIN_MEMO.get(host)
    if domain is None:
        reg = default_psl().registrable_domain(host)
        # Benign race: the PSL mapping is pure, equal values race in.
        domain = _DOMAIN_MEMO[host] = reg if reg is not None else host  # repro-lint: disable=RACE001
    return domain


def crawl_share_event(
    world: World,
    event: ShareEvent,
    config: PlatformConfig,
    capture_id: int,
    clock: Optional[Clock] = None,
    tally: Optional[FaultTally] = None,
) -> Capture:
    """Crawl one accepted share event (pure: no shared mutable state).

    Injected transient faults are retried under ``config.retry`` with
    backoff through *clock*; the crawl timestamp stays fixed across
    retries (backoff is operational delay, not crawl-visible time), so a
    recovered crawl is bit-identical to its fault-free counterpart.
    """
    rng = event_rng(config.seed, event)
    region = "EU" if rng.random() < config.eu_share else "US"
    vantage = Vantage(region=region, address_space="cloud")
    # URLs are visited within a couple of minutes of submission.
    when = event.at + dt.timedelta(seconds=rng.randrange(60, 300))

    def attempt(attempt_no: int) -> Capture:
        return crawl_url(
            world,
            event.url,
            when=when,
            vantage=vantage,
            profile=config.profile,
            capture_id=capture_id,
            faults=config.faults,
            attempt=attempt_no,
        )

    if config.faults is None:
        return attempt(0)
    return run_with_retries(
        attempt,
        key=f"{event.url}@{event.at.isoformat()}",
        policy=config.retry,
        clock=clock,
        tally=tally,
    )


def crawl_share_event_compact(
    world: World,
    event: ShareEvent,
    config: PlatformConfig,
    capture_id: int,
    clock: Optional[Clock] = None,
    tally: Optional[FaultTally] = None,
) -> CompactCrawl:
    """:func:`crawl_share_event` on the columnar path.

    Draws vantage and queue delay from the same keyed stream, renders
    only the visit skeleton, and returns interned scalars instead of a
    ``Capture``. Fault injection and retries behave identically to the
    row path (same schedule key, same retry loop).
    """
    at = event.at
    rng = event_rng(config.seed, event)
    region = "EU" if rng.random() < config.eu_share else "US"
    vantage_id = _EU_CLOUD_ID if region == "EU" else _US_CLOUD_ID
    delay = rng.randrange(60, 300)
    # when = event.at + delay, without building datetime objects.
    seconds = at.hour * 3600 + at.minute * 60 + at.second + delay
    ordinal = at.toordinal() + (1 if seconds >= 86_400 else 0)
    cutoff = config.profile.cutoff

    if config.faults is None:
        return _compact_attempt(
            world, event, region, vantage_id, ordinal, cutoff, capture_id
        )

    schedule_domain = _schedule_domain(event.url)
    vantage_str = VANTAGE_STRS[vantage_id]
    faults = config.faults

    def attempt(attempt_no: int) -> CompactCrawl:
        fault = faults.fault_for(schedule_domain, vantage_str, attempt_no)
        if fault is not None:
            return _faulted_compact(
                schedule_domain, ordinal, vantage_id, capture_id, fault.kind
            )
        return _compact_attempt(
            world, event, region, vantage_id, ordinal, cutoff, capture_id
        )

    return run_with_retries(
        attempt,
        key=f"{event.url}@{event.at.isoformat()}",
        policy=config.retry,
        clock=clock,
        tally=tally,
    )


def _compact_attempt(
    world: World,
    event: ShareEvent,
    region: str,
    vantage_id: int,
    ordinal: int,
    cutoff: float,
    capture_id: int,
) -> CompactCrawl:
    date = _DATES.get(ordinal)
    if date is None:
        # Benign race: fromordinal is pure, equal values race in.
        date = _DATES[ordinal] = dt.date.fromordinal(ordinal)  # repro-lint: disable=RACE001
    visit = visit_compact(world, event.url, date, region, "cloud", cutoff)
    return CompactCrawl(
        capture_id=capture_id,
        domain=_final_domain(visit.final_host),
        date_ordinal=ordinal,
        vantage_id=vantage_id,
        status=visit.status,
        mask=hosts_mask(visit.kept_hosts),
        n_requests=len(visit.kept_hosts),
        timed_out=visit.timed_out,
        fault=None,
    )


def _faulted_compact(
    domain: str,
    ordinal: int,
    vantage_id: int,
    capture_id: int,
    kind: str,
) -> CompactCrawl:
    """The compact row an injected fault produces (mirrors
    :func:`repro.crawler.browser._faulted_capture`: conservative
    failure, no transactions, only anti-bot challenges carry a status).
    """
    status: Optional[int] = None
    timed_out = False
    if kind == "slow-response":
        timed_out = True
    elif kind == "antibot-challenge":
        status = 403
    return CompactCrawl(
        capture_id=capture_id,
        domain=domain,
        date_ordinal=ordinal,
        vantage_id=vantage_id,
        status=status,
        mask=0,
        n_requests=0,
        timed_out=timed_out,
        fault=kind,
    )


# ----------------------------------------------------------------------
# Shard tasks (module-level so the process backend can pickle them)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SocialShardTask:
    """One day-range shard of accepted share events (materialized)."""

    shard_id: int
    world_ref: WorldRef
    config: PlatformConfig
    #: ``(event, capture_id)`` pairs, in serial acceptance order.
    events: Tuple[Tuple[ShareEvent, int], ...]
    #: Resume bookkeeping, set by :func:`resume_social_shard` after a
    #: worker crash: skip tasks below ``start_index`` and seed state
    #: from ``checkpoint``.
    start_index: int = 0
    shard_attempt: int = 0
    checkpoint: Optional["SocialShardResult"] = None


@dataclass(frozen=True)
class SocialShardSpec:
    """One shard as a *recipe* instead of materialized events.

    The process backend used to pickle every accepted ``ShareEvent``
    (URL, timestamp, platform) into each worker. Since the seed stream
    is deterministic per day, a shard is fully described by the stream
    config plus, per day, the indices of the accepted events in that
    day's stream -- a few ints per crawl. The worker regenerates the
    day's events and selects the accepted ones; capture ids are the
    serial acceptance order, contiguous within a shard by construction
    (shards are contiguous slices of the acceptance sequence).
    """

    shard_id: int
    world_ref: WorldRef
    config: PlatformConfig
    stream_config: StreamConfig
    #: ``(day_ordinal, accepted-event indices within that day)`` runs,
    #: in acceptance order.
    runs: Tuple[Tuple[int, Tuple[int, ...]], ...]
    first_capture_id: int
    start_index: int = 0
    shard_attempt: int = 0
    checkpoint: Optional["SocialShardResult"] = None

    def materialize(self, world: World) -> Tuple[Tuple[ShareEvent, int], ...]:
        """Regenerate this shard's ``(event, capture_id)`` sequence.

        The eager reference path: the crawl loop consumes
        :meth:`iter_day_chunks` instead, and ``tests/test_scale.py``
        pins the two equal element for element.
        """
        stream = SocialShareStream(world, self.stream_config)
        out: List[Tuple[ShareEvent, int]] = []
        capture_id = self.first_capture_id
        for ordinal, indices in self.runs:
            day_events = stream.events_for_day(dt.date.fromordinal(ordinal))
            for index in indices:
                out.append((day_events[index], capture_id))
                capture_id += 1
        return tuple(out)

    def iter_day_chunks(
        self, world: World
    ) -> "Iterator[Tuple[Tuple[ShareEvent, int], ...]]":
        """Per-day ``(event, capture_id)`` chunks, generated lazily.

        Same events, same order, same capture-id assignment as
        :meth:`materialize`, but at most one day's accepted events are
        resident at a time: each day streams through the seed
        generator (:meth:`SocialShareStream.iter_day_events`) and stops
        as soon as the day's last accepted index has been selected.
        ``runs`` indices are ascending within a day by construction
        (acceptance follows chronological event order), which is what
        lets one forward pass select them.
        """
        stream = SocialShareStream(world, self.stream_config)
        capture_id = self.first_capture_id
        for ordinal, indices in self.runs:
            chunk: List[Tuple[ShareEvent, int]] = []
            wanted = iter(indices)
            want = next(wanted, None)
            if want is None:
                yield ()
                continue
            day_events = stream.iter_day_events(dt.date.fromordinal(ordinal))
            for index, event in enumerate(day_events):
                if index == want:
                    chunk.append((event, capture_id))
                    capture_id += 1
                    want = next(wanted, None)
                    if want is None:
                        break
            yield tuple(chunk)


def _shard_spill_settings(
    config: PlatformConfig, task: "SocialShardSpec | SocialShardTask"
) -> SpillSettings:
    """Per-shard spill settings: shards sharing a configured directory
    get disjoint subdirectories so their segment files never collide."""
    spill = config.spill
    assert spill is not None
    if spill.directory is None:
        return spill
    return dataclasses.replace(
        spill,
        directory=str(Path(spill.directory) / f"shard-{task.shard_id:04d}"),
    )


@dataclass(frozen=True)
class SocialShardResult:
    shard_id: int
    store: Union[CaptureStore, SpillingCaptureStore]
    failures: int
    captures_seen: int
    overcounted: int
    faults: FaultTally = field(default_factory=FaultTally)


def crawl_social_shard(
    task: Union[SocialShardTask, SocialShardSpec]
) -> SocialShardResult:
    """Crawl one shard into a private store (runs inside a worker).

    A chaos schedule may kill the worker before a scheduled task index:
    the shard raises :class:`WorkerCrash` carrying its partial result as
    the checkpoint, and the executor re-submits a task resumed from it.
    Because each crawl is keyed independently, the resumed run's final
    result is bit-identical to an uninterrupted one.
    """
    world = resolve_world(task.world_ref)
    config = task.config
    if config.world_cache_limits is not None:
        # Bit-invisible (evicted memos regenerate identically); under
        # the thread backend every shard re-applies the same limits to
        # the shared world, which is idempotent.
        world.set_cache_limits(config.world_cache_limits)
    if isinstance(task, SocialShardSpec):
        n_events = _task_size(task)
        pairs: "Iterator[Tuple[ShareEvent, int]]" = itertools.chain.from_iterable(
            task.iter_day_chunks(world)
        )
    else:
        n_events = len(task.events)
        pairs = iter(task.events)
    engine = DetectionEngine()
    store: Union[CaptureStore, SpillingCaptureStore]
    if (
        config.spill is not None
        and config.faults is None
        and not config.retain_captures
    ):
        # Crash checkpoints ship whole stores through WorkerCrash, so
        # spilling stays off under a fault schedule (see PlatformConfig).
        store = SpillingCaptureStore(_shard_spill_settings(config, task))
    else:
        store = CaptureStore(retain_captures=config.retain_captures)
    tally = FaultTally()
    failures = 0
    base_seen = base_overcounted = 0
    if task.checkpoint is not None:
        checkpoint = task.checkpoint
        store.merge(checkpoint.store)
        failures = checkpoint.failures
        base_seen = checkpoint.captures_seen
        base_overcounted = checkpoint.overcounted
        tally.merge(checkpoint.faults)
    clock = VirtualClock()
    schedule = config.faults
    crash_at = (
        schedule.crash_point(task.shard_id, n_events, task.shard_attempt)
        if schedule is not None
        else None
    )
    compact = not config.retain_captures
    for index, (event, capture_id) in enumerate(pairs):
        if index < task.start_index:
            continue
        if crash_at is not None and index == crash_at:
            raise WorkerCrash(
                task.shard_id,
                done=index,
                checkpoint=SocialShardResult(
                    shard_id=task.shard_id,
                    store=store,
                    failures=failures,
                    captures_seen=base_seen + engine.captures_seen,
                    overcounted=base_overcounted + engine.overcounted,
                    faults=tally,
                ),
            )
        if compact:
            row = crawl_share_event_compact(
                world, event, config, capture_id, clock=clock, tally=tally
            )
            if not row.succeeded:
                failures += 1
            cmp_key = engine.detect_compact(row.mask, row.date_ordinal)
            store.append_row(
                row.domain, row.date_ordinal, cmp_key, row.vantage_id,
                row.n_requests,
            )
        else:
            capture = crawl_share_event(
                world, event, config, capture_id, clock=clock, tally=tally
            )
            if not capture.succeeded:
                failures += 1
            detection = engine.detect(capture)
            store.add(capture, detection.cmp_key)
    return SocialShardResult(
        shard_id=task.shard_id,
        store=store,
        failures=failures,
        captures_seen=base_seen + engine.captures_seen,
        overcounted=base_overcounted + engine.overcounted,
        faults=tally,
    )


def resume_social_shard(
    task: Union[SocialShardTask, SocialShardSpec], crash: WorkerCrash
) -> Union[SocialShardTask, SocialShardSpec]:
    """The task that continues *task* past *crash* (executor callback)."""
    return dataclasses.replace(
        task,
        start_index=crash.done,
        shard_attempt=task.shard_attempt + 1,
        checkpoint=crash.checkpoint,
    )


class NetographPlatform:
    """End-to-end social-media measurement pipeline."""

    def __init__(
        self,
        world: World,
        stream: Optional[SocialShareStream] = None,
        config: Optional[PlatformConfig] = None,
        obs: Optional[Observability] = None,
        clock: Optional[Clock] = None,
    ):
        self.world = world
        self.stream = stream or SocialShareStream(world)
        self.config = config or PlatformConfig()
        self.obs = resolve_obs(obs)
        #: Waits out retry backoff; virtual by default so chaos runs
        #: (and their tests) never sleep for real.
        self.clock: Clock = clock if clock is not None else VirtualClock()
        self.queue = CaptureQueue(obs=self.obs)
        self.engine = DetectionEngine(obs=self.obs)
        self.stats = PlatformStats()
        self._capture_id = 0
        metrics = self.obs.metrics
        self._m_events = metrics.counter(
            "platform_events_total", "share events seen by the platform"
        )
        self._m_crawls = metrics.counter(
            "platform_crawls_total", "browser crawls by outcome"
        )
        self._h_shard_seconds = metrics.histogram(
            "executor_shard_seconds", "per-shard crawl wall-clock"
        )
        self._m_faults = metrics.counter(
            "crawl_faults_total", "faults injected into crawls, by kind"
        )
        self._m_retries = metrics.counter(
            "crawl_retries_total", "crawl retry attempts by outcome"
        )
        #: Per-shard stores of the most recent sharded run; consumed by
        #: the cache-populate path so warm entries keep shard granularity.
        self._last_shard_stores: Optional[List[CaptureStore]] = None

    # ------------------------------------------------------------------
    def run(
        self,
        start: dt.date,
        end: dt.date,
        store: Optional[CaptureStore] = None,
        on_day: Optional[Callable[[dt.date], None]] = None,
        executor: Optional[CrawlExecutor] = None,
        cache: Optional["ArtifactCache"] = None,
        fingerprint: Optional["Fingerprint"] = None,
    ) -> CaptureStore:
        """Run the platform over ``[start, end)`` and return the store.

        Passing an existing *store* continues a previous run (the real
        platform ran continuously for 2.5 years). With an *executor*
        whose config is parallel, the crawl phase is sharded by
        share-event days and fanned out over the worker pool; the result
        is identical to the serial path for the same seed.

        With a *cache* and *fingerprint*, the run consults the artifact
        cache first: a hit restores the persisted capture store --
        bit-identical to a cold run, by the exact-round-trip guarantee
        of :mod:`repro.crawler.storage` -- and skips the dedup and crawl
        phases entirely; a miss computes cold and populates the entry
        (per-shard when the run was sharded). Caching is bypassed when
        ``retain_captures`` is set, because full captures are never
        persisted.
        """
        caching = (
            cache is not None
            and fingerprint is not None
            and not self.config.retain_captures
        )
        if caching:
            cached = cache.load_capture_store(fingerprint)
            if cached is not None:
                if store is None:
                    return cached
                store.merge(cached)
                return store
            self._last_shard_stores = None
            fresh = self._run_cold(start, end, None, on_day, executor)
            cache.save_capture_store(
                fingerprint, self._last_shard_stores or fresh
            )
            if store is None:
                return fresh
            if isinstance(fresh, SpillingCaptureStore) and not isinstance(
                store, SpillingCaptureStore
            ):
                # A plain store can only concatenate in-memory columns;
                # fold the spilled run back together first (O(rows),
                # but this path means the caller asked for a resident
                # continuation store anyway).
                store.merge(fresh.fold_in())
            else:
                store.merge(fresh)
            return store
        return self._run_cold(start, end, store, on_day, executor)

    def ingest_day(self, day: dt.date, store: CaptureStore) -> CaptureStore:
        """Crawl one stream day into *store* (the streaming entry point).

        Exactly ``run(day, day + 1 day, store=store)`` on the serial
        path: the queue's cooldown dicts, the capture-id counter and the
        run stats all persist across calls, so a sequence of
        ``ingest_day`` calls over ``[start, end)`` produces a store
        byte-identical to one batch :meth:`run` over the same window --
        the invariant the :mod:`repro.stream` engine's batch-vs-follow
        equivalence rests on (pinned by ``tests/test_stream.py``).
        """
        return self._run_cold(day, day + dt.timedelta(days=1), store)

    # ------------------------------------------------------------------
    # Checkpoint serialization (repro.stream)
    # ------------------------------------------------------------------
    def state_payload(self) -> dict:
        """JSON-serializable mid-run platform state.

        Everything the serial dedup + crawl loop threads from one day to
        the next: the queue's cooldown/stats state, the capture-id
        counter, and the run counters. Crawl *results* are not here --
        they live in the store, checkpointed separately under the batch
        ``social-crawl`` fingerprint of the ingested prefix.
        """
        return {
            "capture_id": self._capture_id,
            "queue": self.queue.state_payload(),
            "stats": {
                "events": self.stats.events,
                "crawls": self.stats.crawls,
                "failures": self.stats.failures,
            },
        }

    def restore_state(self, payload: dict) -> None:
        """Exact inverse of :meth:`state_payload` (fresh platform only)."""
        if self._capture_id:
            raise ValueError("restore_state requires a fresh platform")
        self._capture_id = payload["capture_id"]
        self.queue.restore_state(payload["queue"])
        stats = payload["stats"]
        self.stats.events = stats["events"]
        self.stats.crawls = stats["crawls"]
        self.stats.failures = stats["failures"]

    def _run_cold(
        self,
        start: dt.date,
        end: dt.date,
        store: Optional[CaptureStore] = None,
        on_day: Optional[Callable[[dt.date], None]] = None,
        executor: Optional[CrawlExecutor] = None,
    ) -> CaptureStore:
        """The uncached dedup + crawl pipeline behind :meth:`run`."""
        if self.config.world_cache_limits is not None:
            # Shard workers re-apply this to their resolved worlds; the
            # serial path crawls against self.world directly, so bound
            # it here. Bit-invisible either way.
            self.world.set_cache_limits(self.config.world_cache_limits)
        if store is None:
            config = self.config
            if (
                config.spill is not None
                and config.faults is None
                and not config.retain_captures
            ):
                store = SpillingCaptureStore(config.spill)
            else:
                store = CaptureStore(retain_captures=config.retain_captures)
        parallel = executor is not None and executor.config.parallel
        timing = self.obs.enabled
        with self.obs.span(
            "platform.run",
            start=start.isoformat(),
            end=end.isoformat(),
            parallel=parallel,
        ) as run_span:
            #: ``(event, capture_id, day_ordinal, index_in_day,
            #: seconds_in_day)`` in acceptance order; ordinal/index feed
            #: shard *specs*, seconds feeds the vectorized key derivation.
            pending: List[Tuple[ShareEvent, int, int, int, int]] = []
            crawl_seconds = 0.0
            run_tally = FaultTally()
            day = start
            while day < end:
                ordinal = day.toordinal()
                events = self.stream.events_for_day(day)
                self.stats.events += len(events)
                self._m_events.inc(len(events))
                submit_at = self.queue.submit_at
                day_base = ordinal * 86_400
                for index, event in enumerate(events):
                    at = event.at
                    secs = at.hour * 3_600 + at.minute * 60 + at.second
                    if not submit_at(event.url, day_base + secs):
                        continue
                    self._capture_id += 1
                    pending.append(
                        (event, self._capture_id, ordinal, index, secs)
                    )
                if not parallel:
                    # Span-duration timing only; never crawl-visible.
                    batch_start = (
                        time.perf_counter()  # repro-lint: disable=DET002
                        if timing
                        else 0.0
                    )
                    self._crawl_pending(store, pending, run_tally)
                    if timing:
                        crawl_seconds += (
                            time.perf_counter()  # repro-lint: disable=DET002
                            - batch_start
                        )
                    pending.clear()
                self.queue.prune(
                    dt.datetime.combine(day, dt.time()) + dt.timedelta(days=1)
                )
                if on_day is not None:
                    on_day(day)
                day += dt.timedelta(days=1)
            if parallel and pending:
                assert executor is not None
                self._run_sharded(executor, pending, store, run_tally)
            elif timing:
                self.obs.tracer.record_span(
                    "platform.crawl", crawl_seconds, mode="serial"
                )
            self.stats.faults.merge(run_tally)
            self._meter_faults(run_tally)
            publish_cache_gauges(self.obs)
            publish_world_cache_gauges(self.obs, self.world)
            publish_memory_gauges(self.obs)
            run_span.set(
                events=self.stats.events,
                crawls=self.stats.crawls,
                failures=self.stats.failures,
                skip_rate=round(self.queue.stats.skip_rate, 4),
            )
            if run_tally.injected:
                run_span.set(
                    faults_injected=run_tally.injected,
                    retries=run_tally.retries,
                    retries_exhausted=run_tally.exhausted,
                )
        return store

    # ------------------------------------------------------------------
    def _crawl_pending(
        self,
        store: CaptureStore,
        pending: List[Tuple[ShareEvent, int, int, int, int]],
        tally: FaultTally,
    ) -> None:
        """Serial crawl of one day's accepted events."""
        if self.config.retain_captures:
            for event, capture_id, _ordinal, _index, _secs in pending:
                self._crawl_into(store, event, capture_id, tally)
            return
        config = self.config
        if config.faults is None and pending:
            if structural_band(config.profile.cutoff) is not None:
                self._crawl_pending_vec(store, pending)
                return
        # Columnar fast path: crawl compact rows, detect the whole
        # batch over the mask column, append rows without objects.
        world = self.world
        clock = self.clock
        rows = [
            crawl_share_event_compact(
                world, event, config, capture_id, clock=clock, tally=tally
            )
            for event, capture_id, _ordinal, _index, _secs in pending
        ]
        cmp_keys = self.engine.detect_batch(
            [row.mask for row in rows], [row.date_ordinal for row in rows]
        )
        store.append_batch(
            [row.domain for row in rows],
            [row.date_ordinal for row in rows],
            cmp_keys,
            [row.vantage_id for row in rows],
            [row.n_requests for row in rows],
        )
        ok = failed = exhausted = 0
        for row in rows:
            if row.succeeded:
                ok += 1
            elif row.fault is not None:
                # Retry budget ran out on an injected fault; keep that
                # visible separately so the Section 3.4 accounting still
                # sums (ok + failed + retries_exhausted == crawls).
                exhausted += 1
            else:
                failed += 1
        self.stats.crawls += len(rows)
        self.stats.failures += failed + exhausted
        if ok:
            self._m_crawls.inc(ok, outcome="ok")
        if failed:
            self._m_crawls.inc(failed, outcome="failed")
        if exhausted:
            self._m_crawls.inc(exhausted, outcome="retries_exhausted")

    def _crawl_pending_vec(
        self,
        store: CaptureStore,
        pending: List[Tuple[ShareEvent, int, int, int, int]],
    ) -> None:
        """One day's fault-free compact batch, keys derived vectorized.

        Replicates :func:`crawl_share_event_compact` row by row: the
        event keys and the vantage/delay draws are computed for the
        whole batch with the uint64 replicas of the keyed fold
        (:func:`_fold64_arr` -- bit-identical to :mod:`repro.det`),
        then each visit runs through the same structural fast path the
        per-event code uses. Shard workers keep the scalar path;
        ``tests/test_executor.py`` pins serial == sharded.
        """
        world = self.world
        config = self.config
        cutoff = config.profile.cutoff
        n = len(pending)
        h64s = np.fromiter(
            (item[0].url.h64 for item in pending), dtype=np.uint64, count=n
        )
        ords = np.fromiter(
            (item[2] for item in pending), dtype=np.uint64, count=n
        )
        secs = np.fromiter(
            (item[4] for item in pending), dtype=np.uint64, count=n
        )
        ekeys = _fold64_arr(_event_prefix(config.seed), h64s, ords, secs)
        eu = _draw_arr(ekeys, 1) < config.eu_share
        delays = (_draw_arr(ekeys, 2) * 240).astype(np.int64)
        # when = at + 60..300s; crossing midnight rolls the capture date.
        cap_ords = ords.astype(np.int64) + (
            secs.astype(np.int64) + 60 + delays >= 86_400
        )
        vkeys = _fold64_arr(
            visit_key_prefix(world.config.seed),
            h64s, cap_ords.astype(np.uint64), (~eu).astype(np.uint64), 0,
        )
        eu_l = eu.tolist()
        vk_l = vkeys.tolist()
        ord_l = cap_ords.tolist()
        dates = _DATES
        domains: List[str] = []
        masks: List[int] = []
        n_reqs: List[int] = []
        ok = 0
        for i, item in enumerate(pending):
            co = ord_l[i]
            date = dates.get(co)
            if date is None:
                date = dates[co] = dt.date.fromordinal(co)
            region = "EU" if eu_l[i] else "US"
            visit = visit_compact(
                world, item[0].url, date, region, "cloud", cutoff, vk_l[i]
            )
            kept = visit.kept_hosts
            domains.append(_final_domain(visit.final_host))
            masks.append(hosts_mask(kept))
            n_reqs.append(len(kept))
            status = visit.status
            if status is not None and 200 <= status < 400:
                ok += 1
        cmp_keys = self.engine.detect_batch(masks, ord_l)
        vid_l = np.where(eu, _EU_CLOUD_ID, _US_CLOUD_ID).tolist()
        store.append_batch(domains, ord_l, cmp_keys, vid_l, n_reqs)
        failed = n - ok
        self.stats.crawls += n
        self.stats.failures += failed
        if ok:
            self._m_crawls.inc(ok, outcome="ok")
        if failed:
            self._m_crawls.inc(failed, outcome="failed")

    def _crawl_into(
        self,
        store: CaptureStore,
        event: ShareEvent,
        capture_id: int,
        tally: FaultTally,
    ) -> None:
        capture = crawl_share_event(
            self.world,
            event,
            self.config,
            capture_id,
            clock=self.clock,
            tally=tally,
        )
        self.stats.crawls += 1
        if not capture.succeeded:
            self.stats.failures += 1
            # A failure whose capture still carries a fault kind means
            # the retry budget ran out on an injected fault; keep that
            # visible separately so the Section 3.4 accounting still
            # sums (ok + failed + retries_exhausted == crawls).
            if capture.fault is not None:
                self._m_crawls.inc(outcome="retries_exhausted")
            else:
                self._m_crawls.inc(outcome="failed")
        else:
            self._m_crawls.inc(outcome="ok")
        detection = self.engine.detect(capture)
        store.add(capture, detection.cmp_key)

    # ------------------------------------------------------------------
    def _shard_payloads(
        self,
        executor: CrawlExecutor,
        accepted: List[Tuple[ShareEvent, int, int, int, int]],
    ) -> List[Union[SocialShardTask, SocialShardSpec]]:
        """Partition the acceptance sequence into shard payloads.

        Thread (and serial) backends share memory, so shards carry their
        event tuples directly. The process backend ships
        :class:`SocialShardSpec` recipes instead -- the worker holds the
        world already (``resolve_world``), so the payload shrinks to the
        per-day accepted indices.
        """
        n_shards = executor.config.n_shards(len(accepted))
        chunks = partition_grouped(
            accepted, n_shards, key=lambda item: item[0].at.date()
        )
        world_ref = world_ref_for_backend(self.world, executor.config.backend)
        if executor.config.backend != "process":
            return [
                SocialShardTask(
                    shard_id=i,
                    world_ref=world_ref,
                    config=self.config,
                    events=tuple((item[0], item[1]) for item in chunk),
                )
                for i, chunk in enumerate(chunks)
            ]
        tasks: List[Union[SocialShardTask, SocialShardSpec]] = []
        for i, chunk in enumerate(chunks):
            runs: List[Tuple[int, Tuple[int, ...]]] = []
            day_ordinal: Optional[int] = None
            indices: List[int] = []
            for _event, _capture_id, ordinal, index, _secs in chunk:
                if ordinal != day_ordinal:
                    if indices:
                        assert day_ordinal is not None
                        runs.append((day_ordinal, tuple(indices)))
                    day_ordinal = ordinal
                    indices = []
                indices.append(index)
            if indices:
                assert day_ordinal is not None
                runs.append((day_ordinal, tuple(indices)))
            tasks.append(
                SocialShardSpec(
                    shard_id=i,
                    world_ref=world_ref,
                    config=self.config,
                    stream_config=self.stream.config,
                    runs=tuple(runs),
                    first_capture_id=chunk[0][1],
                )
            )
        return tasks

    def _run_sharded(
        self,
        executor: CrawlExecutor,
        accepted: List[Tuple[ShareEvent, int, int, int, int]],
        store: CaptureStore,
        run_tally: FaultTally,
    ) -> None:
        with self.obs.span(
            "executor.derive_shards",
            backend=executor.config.backend,
            workers=executor.config.workers,
        ) as derive_span:
            tasks = self._shard_payloads(executor, accepted)
            derive_span.set(tasks=len(accepted), shards=len(tasks))
        with self.obs.span(
            "executor.crawl", backend=executor.config.backend
        ) as crawl_span:
            results, seconds, wall, resumes = executor.map_shards(
                crawl_social_shard, tasks, resume=resume_social_shard
            )
            crawl_span.set(shards=len(tasks))
            self._last_shard_stores = [result.store for result in results]
            if self.obs.enabled:
                for task, result, secs in zip(tasks, results, seconds):
                    self.obs.tracer.record_span(
                        "executor.shard",
                        secs,
                        shard=task.shard_id,
                        tasks=_task_size(task),
                        crawls=result.store.n_captures,
                        failures=result.failures,
                    )
                    self._h_shard_seconds.observe(secs, pipeline="social")

        # Payload accounting: only the process backend serializes shard
        # payloads; measuring the spec pickles is cheap (a few ints per
        # crawl) and keeps worker-transfer regressions attributable.
        if executor.config.backend == "process":
            payload_sizes = [
                len(pickle.dumps(t, protocol=pickle.HIGHEST_PROTOCOL))
                for t in tasks
            ]
        else:
            payload_sizes = [0] * len(tasks)
        # Merge-duration stat only, not crawl-visible state.
        merge_start = time.perf_counter()  # repro-lint: disable=DET002
        exec_stats = ExecutorStats(
            backend=executor.config.backend,
            workers=executor.config.workers,
            wall_seconds=wall,
        )
        with self.obs.span("executor.merge", shards=len(tasks)):
            for task, result, secs, n_resumes, n_bytes in zip(
                tasks, results, seconds, resumes, payload_sizes
            ):
                store.merge(result.store)
                self.stats.crawls += result.store.n_captures
                self.stats.failures += result.failures
                run_tally.merge(result.faults)
                self._absorb_shard_metrics(result)
                exec_stats.shards.append(
                    ShardStats(
                        shard_id=task.shard_id,
                        tasks=_task_size(task),
                        crawls=result.store.n_captures,
                        failures=result.failures,
                        seconds=secs,
                        resumes=n_resumes,
                        payload_bytes=n_bytes,
                    )
                )
        exec_stats.merge_seconds = (
            time.perf_counter()  # repro-lint: disable=DET002
            - merge_start
        )
        self.stats.executor = exec_stats

    def _meter_faults(self, tally: FaultTally) -> None:
        """Publish a run's fault/retry tally to the metrics registry."""
        for kind, count in sorted(tally.by_kind.items()):
            self._m_faults.inc(count, kind=kind)
        if tally.recovered:
            self._m_retries.inc(tally.recovered, outcome="recovered")
        if tally.exhausted:
            self._m_retries.inc(tally.exhausted, outcome="exhausted")

    def _absorb_shard_metrics(self, result: SocialShardResult) -> None:
        """Fold a shard's detection/crawl accounting into this process's
        stats and metrics (detection itself ran inside the worker)."""
        ok = result.store.n_captures - result.failures
        exhausted = result.faults.exhausted
        plain_failed = result.failures - exhausted
        if ok:
            self._m_crawls.inc(ok, outcome="ok")
        if plain_failed:
            self._m_crawls.inc(plain_failed, outcome="failed")
        if exhausted:
            self._m_crawls.inc(exhausted, outcome="retries_exhausted")
        matches: Dict[str, int] = {}
        if self.obs.enabled:
            for _domain, _ordinal, cmp_key, _vid in result.store.iter_rows():
                if cmp_key is not None:
                    matches[cmp_key] = matches.get(cmp_key, 0) + 1
        self.engine.absorb(
            result.captures_seen, result.overcounted, matches
        )


def _task_size(task: Union[SocialShardTask, SocialShardSpec]) -> int:
    """Number of crawls a shard payload describes."""
    if isinstance(task, SocialShardSpec):
        return sum(len(indices) for _ordinal, indices in task.runs)
    return len(task.events)
