"""The measurement platform: seed stream -> queue -> crawlers -> store.

Mirrors Figure 3: a realtime stream of URLs shared on social media is
deduplicated by the capture queue and crawled "within a couple of
minutes" from virtual machines in US and EU data centers of a public
cloud provider -- 50% of crawls from each, assigned randomly
(Section 3.2). Every capture is matched against the CMP fingerprints and
stored.
"""

from __future__ import annotations

import datetime as dt
import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.crawler.browser import DEFAULT_PROFILE, CrawlProfile, crawl_url
from repro.crawler.capture import Capture, Observation, Vantage
from repro.crawler.queue import CaptureQueue
from repro.crawler.seeds import ShareEvent, SocialShareStream
from repro.detect.engine import DetectionEngine
from repro.web.worldgen import World


@dataclass(frozen=True)
class PlatformConfig:
    """Operational parameters of the platform."""

    seed: int = 23
    #: Fraction of crawls assigned to the EU cloud (the rest go US).
    eu_share: float = 0.5
    #: Keep full captures in memory (tests); otherwise only the compact
    #: observations are retained, like the real platform's database rows.
    retain_captures: bool = False
    profile: CrawlProfile = DEFAULT_PROFILE


class CaptureStore:
    """The platform's queryable capture database."""

    def __init__(self, retain_captures: bool = False):
        self.retain_captures = retain_captures
        self.observations: List[Observation] = []
        self.captures: List[Capture] = []
        self.total_requests = 0
        self.n_captures = 0
        self._by_domain: Optional[Dict[str, List[Observation]]] = None

    def add(self, capture: Capture, cmp_key: Optional[str]) -> Observation:
        obs = capture.to_observation(cmp_key)
        self.observations.append(obs)
        self.total_requests += capture.n_requests
        self.n_captures += 1
        self._by_domain = None
        if self.retain_captures:
            self.captures.append(capture)
        return obs

    # ------------------------------------------------------------------
    # Query API (the stand-in for Netograph's custom API)
    # ------------------------------------------------------------------
    def by_domain(self) -> Dict[str, List[Observation]]:
        """Observations grouped by domain, sorted by date (cached)."""
        if self._by_domain is None:
            grouped: Dict[str, List[Observation]] = defaultdict(list)
            for obs in self.observations:
                grouped[obs.domain].append(obs)
            for lst in grouped.values():
                lst.sort(key=lambda o: o.date)
            self._by_domain = dict(grouped)
        return self._by_domain

    @property
    def unique_domains(self) -> int:
        return len(self.by_domain())

    def observations_for(self, domain: str) -> List[Observation]:
        return self.by_domain().get(domain, [])

    def domains_with_cmp(self) -> Tuple[str, ...]:
        return tuple(
            d
            for d, lst in self.by_domain().items()
            if any(o.cmp_key for o in lst)
        )


@dataclass
class PlatformStats:
    """Run counters, reported alongside the results."""

    events: int = 0
    crawls: int = 0
    failures: int = 0

    @property
    def failure_rate(self) -> float:
        return self.failures / self.crawls if self.crawls else 0.0


class NetographPlatform:
    """End-to-end social-media measurement pipeline."""

    def __init__(
        self,
        world: World,
        stream: Optional[SocialShareStream] = None,
        config: Optional[PlatformConfig] = None,
    ):
        self.world = world
        self.stream = stream or SocialShareStream(world)
        self.config = config or PlatformConfig()
        self.queue = CaptureQueue()
        self.engine = DetectionEngine()
        self.stats = PlatformStats()
        self._capture_id = 0

    # ------------------------------------------------------------------
    def run(
        self,
        start: dt.date,
        end: dt.date,
        store: Optional[CaptureStore] = None,
        on_day: Optional[Callable[[dt.date], None]] = None,
    ) -> CaptureStore:
        """Run the platform over ``[start, end)`` and return the store.

        Passing an existing *store* continues a previous run (the real
        platform ran continuously for 2.5 years).
        """
        if store is None:
            store = CaptureStore(retain_captures=self.config.retain_captures)
        vantage_rng = random.Random(f"{self.config.seed}:vantage")
        day = start
        while day < end:
            for event in self.stream.events_for_day(day):
                self.stats.events += 1
                if not self.queue.submit(event.url, event.at):
                    continue
                self._crawl_event(event, vantage_rng, store)
            self.queue.prune(
                dt.datetime.combine(day, dt.time()) + dt.timedelta(days=1)
            )
            if on_day is not None:
                on_day(day)
            day += dt.timedelta(days=1)
        return store

    def _crawl_event(
        self,
        event: ShareEvent,
        vantage_rng: random.Random,
        store: CaptureStore,
    ) -> None:
        region = "EU" if vantage_rng.random() < self.config.eu_share else "US"
        vantage = Vantage(region=region, address_space="cloud")
        # URLs are visited within a couple of minutes of submission.
        when = event.at + dt.timedelta(seconds=vantage_rng.randrange(60, 300))
        self._capture_id += 1
        capture = crawl_url(
            self.world,
            event.url,
            when=when,
            vantage=vantage,
            profile=self.config.profile,
            capture_id=self._capture_id,
        )
        self.stats.crawls += 1
        if not capture.succeeded:
            self.stats.failures += 1
        detection = self.engine.detect(capture)
        store.add(capture, detection.cmp_key)
