"""The measurement platform: seed stream -> queue -> crawlers -> store.

Mirrors Figure 3: a realtime stream of URLs shared on social media is
deduplicated by the capture queue and crawled "within a couple of
minutes" from virtual machines in US and EU data centers of a public
cloud provider -- 50% of crawls from each, assigned randomly
(Section 3.2). Every capture is matched against the CMP fingerprints and
stored.

A run has two phases. The *dedup phase* walks the day stream through the
capture queue serially (the 1h/48h cooldown rules are inherently
sequential, but cheap -- dictionary lookups only). The *crawl phase*
visits every accepted URL; it is embarrassingly parallel because each
crawl's randomness is derived from per-event keys, never from shared
sequential state. Passing a :class:`~repro.crawler.executor.CrawlExecutor`
fans the crawl phase out over day-range shards; the default is the plain
serial loop.
"""

from __future__ import annotations

import dataclasses
import datetime as dt
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache -> storage -> platform)
    from repro.cache import ArtifactCache, Fingerprint

from repro.crawler.browser import DEFAULT_PROFILE, CrawlProfile, crawl_url
from repro.crawler.capture import Capture, Observation, Vantage
from repro.crawler.executor import (
    CrawlExecutor,
    ExecutorStats,
    ShardStats,
    WorldRef,
    partition_grouped,
    resolve_world,
    world_ref_for_backend,
)
from repro.crawler.queue import CaptureQueue
from repro.crawler.seeds import ShareEvent, SocialShareStream
from repro.detect.engine import DetectionEngine
from repro.faults import (
    Clock,
    FaultSchedule,
    FaultTally,
    RetryPolicy,
    VirtualClock,
    WorkerCrash,
    run_with_retries,
)
from repro.net import publish_cache_gauges
from repro.obs import Observability, resolve_obs
from repro.web.worldgen import World


@dataclass(frozen=True)
class PlatformConfig:
    """Operational parameters of the platform."""

    seed: int = 23
    #: Fraction of crawls assigned to the EU cloud (the rest go US).
    eu_share: float = 0.5
    #: Keep full captures in memory (tests); otherwise only the compact
    #: observations are retained, like the real platform's database rows.
    retain_captures: bool = False
    profile: CrawlProfile = DEFAULT_PROFILE
    #: Chaos schedule injected into every crawl; ``None`` (the default)
    #: keeps the pipeline bit-identical to a build without repro.faults.
    faults: Optional[FaultSchedule] = None
    #: Backoff policy for retrying injected transient faults; ``None``
    #: records the faulted capture without retrying.
    retry: Optional[RetryPolicy] = None


class CaptureStore:
    """The platform's queryable capture database.

    The ``by_domain`` index is maintained incrementally: every ``add``
    appends to the matching domain bucket, and buckets are re-sorted
    lazily (and individually) only when an out-of-order date arrived.
    Query results are snapshots -- a dict returned by :meth:`by_domain`
    is never mutated by later writes, which pay a small copy-on-write
    cost per touched bucket instead.
    """

    def __init__(self, retain_captures: bool = False):
        self.retain_captures = retain_captures
        self.observations: List[Observation] = []
        self.captures: List[Capture] = []
        self.total_requests = 0
        self.n_captures = 0
        self._by_domain: Dict[str, List[Observation]] = {}
        #: Domains whose bucket needs a re-sort before the next query.
        self._unsorted: Set[str] = set()
        #: The dict handed out by the last ``by_domain`` call, reused
        #: until the next write invalidates it.
        self._snapshot: Optional[Dict[str, List[Observation]]] = None

    def add(self, capture: Capture, cmp_key: Optional[str]) -> Observation:
        obs = capture.to_observation(cmp_key)
        self.add_observation(obs)
        self.total_requests += capture.n_requests
        self.n_captures += 1
        if self.retain_captures:
            self.captures.append(capture)
        return obs

    def add_observation(self, obs: Observation) -> Observation:
        """Append a pre-compacted observation, maintaining the index."""
        self.observations.append(obs)
        bucket = self._own_bucket(obs.domain)
        if bucket is None:
            self._by_domain[obs.domain] = [obs]
        else:
            if bucket[-1].date > obs.date:
                self._unsorted.add(obs.domain)
            bucket.append(obs)
        self._snapshot = None
        return obs

    def merge(self, other: "CaptureStore") -> None:
        """Fold *other* (e.g. a shard store) into this store.

        Observation order is preserved (this store's entries first), so
        merging shard stores in shard order reproduces the serial
        insertion order exactly.
        """
        self.observations.extend(other.observations)
        self.total_requests += other.total_requests
        self.n_captures += other.n_captures
        if self.retain_captures and other.captures:
            self.captures.extend(other.captures)
        for domain, incoming in other._by_domain.items():
            bucket = self._own_bucket(domain)
            if bucket is None:
                self._by_domain[domain] = list(incoming)
            else:
                if incoming and bucket[-1].date > incoming[0].date:
                    self._unsorted.add(domain)
                bucket.extend(incoming)
        self._unsorted |= other._unsorted
        self._snapshot = None

    def _own_bucket(self, domain: str) -> Optional[List[Observation]]:
        """The mutable bucket for *domain*, detached from any snapshot
        handed out earlier (copy-on-write)."""
        bucket = self._by_domain.get(domain)
        if (
            bucket is not None
            and self._snapshot is not None
            and self._snapshot.get(domain) is bucket
        ):
            bucket = list(bucket)
            self._by_domain[domain] = bucket
        return bucket

    # ------------------------------------------------------------------
    # Query API (the stand-in for Netograph's custom API)
    # ------------------------------------------------------------------
    def by_domain(self) -> Dict[str, List[Observation]]:
        """Observations grouped by domain, sorted by date (cached)."""
        if self._snapshot is None:
            for domain in self._unsorted:
                self._by_domain[domain].sort(key=lambda o: o.date)
            self._unsorted.clear()
            self._snapshot = dict(self._by_domain)
        return self._snapshot

    @property
    def unique_domains(self) -> int:
        return len(self._by_domain)

    def observations_for(self, domain: str) -> List[Observation]:
        return self.by_domain().get(domain, [])

    def domains_with_cmp(self) -> Tuple[str, ...]:
        return tuple(
            d
            for d, lst in self.by_domain().items()
            if any(o.cmp_key for o in lst)
        )


@dataclass
class PlatformStats:
    """Run counters, reported alongside the results."""

    events: int = 0
    crawls: int = 0
    failures: int = 0
    #: Fan-out details of the most recent sharded run, if any.
    executor: Optional[ExecutorStats] = None
    #: Fault/retry accounting across all runs (empty outside chaos).
    faults: FaultTally = field(default_factory=FaultTally)

    @property
    def failure_rate(self) -> float:
        return self.failures / self.crawls if self.crawls else 0.0


# ----------------------------------------------------------------------
# Per-event determinism
# ----------------------------------------------------------------------
def event_rng(seed: int, event: ShareEvent) -> random.Random:
    """The RNG driving one crawl's vantage and queue delay.

    Keyed on ``(seed, url, share time)`` instead of drawing from a shared
    sequential stream, so the assignment is identical no matter how many
    crawls ran before it -- the property that makes sharded execution
    bit-identical to the serial loop. Two accepted events can never
    collide on the key: the queue's 48h URL cooldown rejects a second
    submission of the same URL at the same instant.
    """
    return random.Random(
        f"{seed}:vantage:{event.url}:{event.at.isoformat()}"
    )


def crawl_share_event(
    world: World,
    event: ShareEvent,
    config: PlatformConfig,
    capture_id: int,
    clock: Optional[Clock] = None,
    tally: Optional[FaultTally] = None,
) -> Capture:
    """Crawl one accepted share event (pure: no shared mutable state).

    Injected transient faults are retried under ``config.retry`` with
    backoff through *clock*; the crawl timestamp stays fixed across
    retries (backoff is operational delay, not crawl-visible time), so a
    recovered crawl is bit-identical to its fault-free counterpart.
    """
    rng = event_rng(config.seed, event)
    region = "EU" if rng.random() < config.eu_share else "US"
    vantage = Vantage(region=region, address_space="cloud")
    # URLs are visited within a couple of minutes of submission.
    when = event.at + dt.timedelta(seconds=rng.randrange(60, 300))

    def attempt(attempt_no: int) -> Capture:
        return crawl_url(
            world,
            event.url,
            when=when,
            vantage=vantage,
            profile=config.profile,
            capture_id=capture_id,
            faults=config.faults,
            attempt=attempt_no,
        )

    if config.faults is None:
        return attempt(0)
    return run_with_retries(
        attempt,
        key=f"{event.url}@{event.at.isoformat()}",
        policy=config.retry,
        clock=clock,
        tally=tally,
    )


# ----------------------------------------------------------------------
# Shard task (module-level so the process backend can pickle it)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SocialShardTask:
    """One day-range shard of accepted share events."""

    shard_id: int
    world_ref: WorldRef
    config: PlatformConfig
    #: ``(event, capture_id)`` pairs, in serial acceptance order.
    events: Tuple[Tuple[ShareEvent, int], ...]
    #: Resume bookkeeping, set by :func:`resume_social_shard` after a
    #: worker crash: skip tasks below ``start_index`` and seed state
    #: from ``checkpoint``.
    start_index: int = 0
    shard_attempt: int = 0
    checkpoint: Optional["SocialShardResult"] = None


@dataclass(frozen=True)
class SocialShardResult:
    shard_id: int
    store: CaptureStore
    failures: int
    captures_seen: int
    overcounted: int
    faults: FaultTally = field(default_factory=FaultTally)


def crawl_social_shard(task: SocialShardTask) -> SocialShardResult:
    """Crawl one shard into a private store (runs inside a worker).

    A chaos schedule may kill the worker before a scheduled task index:
    the shard raises :class:`WorkerCrash` carrying its partial result as
    the checkpoint, and the executor re-submits a task resumed from it.
    Because each crawl is keyed independently, the resumed run's final
    result is bit-identical to an uninterrupted one.
    """
    world = resolve_world(task.world_ref)
    engine = DetectionEngine()
    store = CaptureStore(retain_captures=task.config.retain_captures)
    tally = FaultTally()
    failures = 0
    base_seen = base_overcounted = 0
    if task.checkpoint is not None:
        checkpoint = task.checkpoint
        store.merge(checkpoint.store)
        failures = checkpoint.failures
        base_seen = checkpoint.captures_seen
        base_overcounted = checkpoint.overcounted
        tally.merge(checkpoint.faults)
    clock = VirtualClock()
    schedule = task.config.faults
    crash_at = (
        schedule.crash_point(
            task.shard_id, len(task.events), task.shard_attempt
        )
        if schedule is not None
        else None
    )
    for index, (event, capture_id) in enumerate(task.events):
        if index < task.start_index:
            continue
        if crash_at is not None and index == crash_at:
            raise WorkerCrash(
                task.shard_id,
                done=index,
                checkpoint=SocialShardResult(
                    shard_id=task.shard_id,
                    store=store,
                    failures=failures,
                    captures_seen=base_seen + engine.captures_seen,
                    overcounted=base_overcounted + engine.overcounted,
                    faults=tally,
                ),
            )
        capture = crawl_share_event(
            world, event, task.config, capture_id, clock=clock, tally=tally
        )
        if not capture.succeeded:
            failures += 1
        detection = engine.detect(capture)
        store.add(capture, detection.cmp_key)
    return SocialShardResult(
        shard_id=task.shard_id,
        store=store,
        failures=failures,
        captures_seen=base_seen + engine.captures_seen,
        overcounted=base_overcounted + engine.overcounted,
        faults=tally,
    )


def resume_social_shard(
    task: SocialShardTask, crash: WorkerCrash
) -> SocialShardTask:
    """The task that continues *task* past *crash* (executor callback)."""
    return dataclasses.replace(
        task,
        start_index=crash.done,
        shard_attempt=task.shard_attempt + 1,
        checkpoint=crash.checkpoint,
    )


class NetographPlatform:
    """End-to-end social-media measurement pipeline."""

    def __init__(
        self,
        world: World,
        stream: Optional[SocialShareStream] = None,
        config: Optional[PlatformConfig] = None,
        obs: Optional[Observability] = None,
        clock: Optional[Clock] = None,
    ):
        self.world = world
        self.stream = stream or SocialShareStream(world)
        self.config = config or PlatformConfig()
        self.obs = resolve_obs(obs)
        #: Waits out retry backoff; virtual by default so chaos runs
        #: (and their tests) never sleep for real.
        self.clock: Clock = clock if clock is not None else VirtualClock()
        self.queue = CaptureQueue(obs=self.obs)
        self.engine = DetectionEngine(obs=self.obs)
        self.stats = PlatformStats()
        self._capture_id = 0
        metrics = self.obs.metrics
        self._m_events = metrics.counter(
            "platform_events_total", "share events seen by the platform"
        )
        self._m_crawls = metrics.counter(
            "platform_crawls_total", "browser crawls by outcome"
        )
        self._h_shard_seconds = metrics.histogram(
            "executor_shard_seconds", "per-shard crawl wall-clock"
        )
        self._m_faults = metrics.counter(
            "crawl_faults_total", "faults injected into crawls, by kind"
        )
        self._m_retries = metrics.counter(
            "crawl_retries_total", "crawl retry attempts by outcome"
        )
        #: Per-shard stores of the most recent sharded run; consumed by
        #: the cache-populate path so warm entries keep shard granularity.
        self._last_shard_stores: Optional[List[CaptureStore]] = None

    # ------------------------------------------------------------------
    def run(
        self,
        start: dt.date,
        end: dt.date,
        store: Optional[CaptureStore] = None,
        on_day: Optional[Callable[[dt.date], None]] = None,
        executor: Optional[CrawlExecutor] = None,
        cache: Optional["ArtifactCache"] = None,
        fingerprint: Optional["Fingerprint"] = None,
    ) -> CaptureStore:
        """Run the platform over ``[start, end)`` and return the store.

        Passing an existing *store* continues a previous run (the real
        platform ran continuously for 2.5 years). With an *executor*
        whose config is parallel, the crawl phase is sharded by
        share-event days and fanned out over the worker pool; the result
        is identical to the serial path for the same seed.

        With a *cache* and *fingerprint*, the run consults the artifact
        cache first: a hit restores the persisted capture store --
        bit-identical to a cold run, by the exact-round-trip guarantee
        of :mod:`repro.crawler.storage` -- and skips the dedup and crawl
        phases entirely; a miss computes cold and populates the entry
        (per-shard when the run was sharded). Caching is bypassed when
        ``retain_captures`` is set, because full captures are never
        persisted.
        """
        caching = (
            cache is not None
            and fingerprint is not None
            and not self.config.retain_captures
        )
        if caching:
            cached = cache.load_capture_store(fingerprint)
            if cached is not None:
                if store is None:
                    return cached
                store.merge(cached)
                return store
            self._last_shard_stores = None
            fresh = self._run_cold(start, end, None, on_day, executor)
            cache.save_capture_store(
                fingerprint, self._last_shard_stores or fresh
            )
            if store is None:
                return fresh
            store.merge(fresh)
            return store
        return self._run_cold(start, end, store, on_day, executor)

    def _run_cold(
        self,
        start: dt.date,
        end: dt.date,
        store: Optional[CaptureStore] = None,
        on_day: Optional[Callable[[dt.date], None]] = None,
        executor: Optional[CrawlExecutor] = None,
    ) -> CaptureStore:
        """The uncached dedup + crawl pipeline behind :meth:`run`."""
        if store is None:
            store = CaptureStore(retain_captures=self.config.retain_captures)
        parallel = executor is not None and executor.config.parallel
        timing = self.obs.enabled
        with self.obs.span(
            "platform.run",
            start=start.isoformat(),
            end=end.isoformat(),
            parallel=parallel,
        ) as run_span:
            pending: List[Tuple[ShareEvent, int]] = []
            crawl_seconds = 0.0
            run_tally = FaultTally()
            day = start
            while day < end:
                for event in self.stream.events_for_day(day):
                    self.stats.events += 1
                    self._m_events.inc()
                    if not self.queue.submit(event.url, event.at):
                        continue
                    self._capture_id += 1
                    pending.append((event, self._capture_id))
                if not parallel:
                    # Span-duration timing only; never crawl-visible.
                    batch_start = (
                        time.perf_counter()  # repro-lint: disable=DET002
                        if timing
                        else 0.0
                    )
                    for event, capture_id in pending:
                        self._crawl_into(store, event, capture_id, run_tally)
                    if timing:
                        crawl_seconds += (
                            time.perf_counter()  # repro-lint: disable=DET002
                            - batch_start
                        )
                    pending.clear()
                self.queue.prune(
                    dt.datetime.combine(day, dt.time()) + dt.timedelta(days=1)
                )
                if on_day is not None:
                    on_day(day)
                day += dt.timedelta(days=1)
            if parallel and pending:
                assert executor is not None
                self._run_sharded(executor, pending, store, run_tally)
            elif timing:
                self.obs.tracer.record_span(
                    "platform.crawl", crawl_seconds, mode="serial"
                )
            self.stats.faults.merge(run_tally)
            self._meter_faults(run_tally)
            publish_cache_gauges(self.obs)
            run_span.set(
                events=self.stats.events,
                crawls=self.stats.crawls,
                failures=self.stats.failures,
                skip_rate=round(self.queue.stats.skip_rate, 4),
            )
            if run_tally.injected:
                run_span.set(
                    faults_injected=run_tally.injected,
                    retries=run_tally.retries,
                    retries_exhausted=run_tally.exhausted,
                )
        return store

    # ------------------------------------------------------------------
    def _crawl_into(
        self,
        store: CaptureStore,
        event: ShareEvent,
        capture_id: int,
        tally: FaultTally,
    ) -> None:
        capture = crawl_share_event(
            self.world,
            event,
            self.config,
            capture_id,
            clock=self.clock,
            tally=tally,
        )
        self.stats.crawls += 1
        if not capture.succeeded:
            self.stats.failures += 1
            # A failure whose capture still carries a fault kind means
            # the retry budget ran out on an injected fault; keep that
            # visible separately so the Section 3.4 accounting still
            # sums (ok + failed + retries_exhausted == crawls).
            if capture.fault is not None:
                self._m_crawls.inc(outcome="retries_exhausted")
            else:
                self._m_crawls.inc(outcome="failed")
        else:
            self._m_crawls.inc(outcome="ok")
        detection = self.engine.detect(capture)
        store.add(capture, detection.cmp_key)

    def _run_sharded(
        self,
        executor: CrawlExecutor,
        accepted: List[Tuple[ShareEvent, int]],
        store: CaptureStore,
        run_tally: FaultTally,
    ) -> None:
        with self.obs.span(
            "executor.derive_shards",
            backend=executor.config.backend,
            workers=executor.config.workers,
        ) as derive_span:
            n_shards = executor.config.n_shards(len(accepted))
            chunks = partition_grouped(
                accepted, n_shards, key=lambda pair: pair[0].at.date()
            )
            world_ref = world_ref_for_backend(
                self.world, executor.config.backend
            )
            tasks = [
                SocialShardTask(
                    shard_id=i,
                    world_ref=world_ref,
                    config=self.config,
                    events=tuple(chunk),
                )
                for i, chunk in enumerate(chunks)
            ]
            derive_span.set(tasks=len(accepted), shards=len(tasks))
        with self.obs.span(
            "executor.crawl", backend=executor.config.backend
        ) as crawl_span:
            results, seconds, wall, resumes = executor.map_shards(
                crawl_social_shard, tasks, resume=resume_social_shard
            )
            crawl_span.set(shards=len(tasks))
            self._last_shard_stores = [result.store for result in results]
            if self.obs.enabled:
                for task, result, secs in zip(tasks, results, seconds):
                    self.obs.tracer.record_span(
                        "executor.shard",
                        secs,
                        shard=task.shard_id,
                        tasks=len(task.events),
                        crawls=result.store.n_captures,
                        failures=result.failures,
                    )
                    self._h_shard_seconds.observe(secs, pipeline="social")

        # Merge-duration stat only, not crawl-visible state.
        merge_start = time.perf_counter()  # repro-lint: disable=DET002
        exec_stats = ExecutorStats(
            backend=executor.config.backend,
            workers=executor.config.workers,
            wall_seconds=wall,
        )
        with self.obs.span("executor.merge", shards=len(tasks)):
            for task, result, secs, n_resumes in zip(
                tasks, results, seconds, resumes
            ):
                store.merge(result.store)
                self.stats.crawls += result.store.n_captures
                self.stats.failures += result.failures
                run_tally.merge(result.faults)
                self._absorb_shard_metrics(result)
                exec_stats.shards.append(
                    ShardStats(
                        shard_id=task.shard_id,
                        tasks=len(task.events),
                        crawls=result.store.n_captures,
                        failures=result.failures,
                        seconds=secs,
                        resumes=n_resumes,
                    )
                )
        exec_stats.merge_seconds = (
            time.perf_counter()  # repro-lint: disable=DET002
            - merge_start
        )
        self.stats.executor = exec_stats

    def _meter_faults(self, tally: FaultTally) -> None:
        """Publish a run's fault/retry tally to the metrics registry."""
        for kind, count in sorted(tally.by_kind.items()):
            self._m_faults.inc(count, kind=kind)
        if tally.recovered:
            self._m_retries.inc(tally.recovered, outcome="recovered")
        if tally.exhausted:
            self._m_retries.inc(tally.exhausted, outcome="exhausted")

    def _absorb_shard_metrics(self, result: SocialShardResult) -> None:
        """Fold a shard's detection/crawl accounting into this process's
        stats and metrics (detection itself ran inside the worker)."""
        ok = result.store.n_captures - result.failures
        exhausted = result.faults.exhausted
        plain_failed = result.failures - exhausted
        if ok:
            self._m_crawls.inc(ok, outcome="ok")
        if plain_failed:
            self._m_crawls.inc(plain_failed, outcome="failed")
        if exhausted:
            self._m_crawls.inc(exhausted, outcome="retries_exhausted")
        matches: Dict[str, int] = {}
        if self.obs.enabled:
            for obs in result.store.observations:
                if obs.cmp_key is not None:
                    matches[obs.cmp_key] = matches.get(obs.cmp_key, 0) + 1
        self.engine.absorb(
            result.captures_seen, result.overcounted, matches
        )
