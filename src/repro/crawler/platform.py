"""The measurement platform: seed stream -> queue -> crawlers -> store.

Mirrors Figure 3: a realtime stream of URLs shared on social media is
deduplicated by the capture queue and crawled "within a couple of
minutes" from virtual machines in US and EU data centers of a public
cloud provider -- 50% of crawls from each, assigned randomly
(Section 3.2). Every capture is matched against the CMP fingerprints and
stored.

A run has two phases. The *dedup phase* walks the day stream through the
capture queue serially (the 1h/48h cooldown rules are inherently
sequential, but cheap -- dictionary lookups only). The *crawl phase*
visits every accepted URL; it is embarrassingly parallel because each
crawl's randomness is derived from per-event keys, never from shared
sequential state. Passing a :class:`~repro.crawler.executor.CrawlExecutor`
fans the crawl phase out over day-range shards; the default is the plain
serial loop.
"""

from __future__ import annotations

import datetime as dt
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.crawler.browser import DEFAULT_PROFILE, CrawlProfile, crawl_url
from repro.crawler.capture import Capture, Observation, Vantage
from repro.crawler.executor import (
    CrawlExecutor,
    ExecutorStats,
    ShardStats,
    WorldRef,
    partition_grouped,
    resolve_world,
    world_ref_for_backend,
)
from repro.crawler.queue import CaptureQueue
from repro.crawler.seeds import ShareEvent, SocialShareStream
from repro.detect.engine import DetectionEngine
from repro.obs import Observability, resolve_obs
from repro.web.worldgen import World


@dataclass(frozen=True)
class PlatformConfig:
    """Operational parameters of the platform."""

    seed: int = 23
    #: Fraction of crawls assigned to the EU cloud (the rest go US).
    eu_share: float = 0.5
    #: Keep full captures in memory (tests); otherwise only the compact
    #: observations are retained, like the real platform's database rows.
    retain_captures: bool = False
    profile: CrawlProfile = DEFAULT_PROFILE


class CaptureStore:
    """The platform's queryable capture database.

    The ``by_domain`` index is maintained incrementally: every ``add``
    appends to the matching domain bucket, and buckets are re-sorted
    lazily (and individually) only when an out-of-order date arrived.
    Query results are snapshots -- a dict returned by :meth:`by_domain`
    is never mutated by later writes, which pay a small copy-on-write
    cost per touched bucket instead.
    """

    def __init__(self, retain_captures: bool = False):
        self.retain_captures = retain_captures
        self.observations: List[Observation] = []
        self.captures: List[Capture] = []
        self.total_requests = 0
        self.n_captures = 0
        self._by_domain: Dict[str, List[Observation]] = {}
        #: Domains whose bucket needs a re-sort before the next query.
        self._unsorted: Set[str] = set()
        #: The dict handed out by the last ``by_domain`` call, reused
        #: until the next write invalidates it.
        self._snapshot: Optional[Dict[str, List[Observation]]] = None

    def add(self, capture: Capture, cmp_key: Optional[str]) -> Observation:
        obs = capture.to_observation(cmp_key)
        self.add_observation(obs)
        self.total_requests += capture.n_requests
        self.n_captures += 1
        if self.retain_captures:
            self.captures.append(capture)
        return obs

    def add_observation(self, obs: Observation) -> Observation:
        """Append a pre-compacted observation, maintaining the index."""
        self.observations.append(obs)
        bucket = self._own_bucket(obs.domain)
        if bucket is None:
            self._by_domain[obs.domain] = [obs]
        else:
            if bucket[-1].date > obs.date:
                self._unsorted.add(obs.domain)
            bucket.append(obs)
        self._snapshot = None
        return obs

    def merge(self, other: "CaptureStore") -> None:
        """Fold *other* (e.g. a shard store) into this store.

        Observation order is preserved (this store's entries first), so
        merging shard stores in shard order reproduces the serial
        insertion order exactly.
        """
        self.observations.extend(other.observations)
        self.total_requests += other.total_requests
        self.n_captures += other.n_captures
        if self.retain_captures and other.captures:
            self.captures.extend(other.captures)
        for domain, incoming in other._by_domain.items():
            bucket = self._own_bucket(domain)
            if bucket is None:
                self._by_domain[domain] = list(incoming)
            else:
                if incoming and bucket[-1].date > incoming[0].date:
                    self._unsorted.add(domain)
                bucket.extend(incoming)
        self._unsorted |= other._unsorted
        self._snapshot = None

    def _own_bucket(self, domain: str) -> Optional[List[Observation]]:
        """The mutable bucket for *domain*, detached from any snapshot
        handed out earlier (copy-on-write)."""
        bucket = self._by_domain.get(domain)
        if (
            bucket is not None
            and self._snapshot is not None
            and self._snapshot.get(domain) is bucket
        ):
            bucket = list(bucket)
            self._by_domain[domain] = bucket
        return bucket

    # ------------------------------------------------------------------
    # Query API (the stand-in for Netograph's custom API)
    # ------------------------------------------------------------------
    def by_domain(self) -> Dict[str, List[Observation]]:
        """Observations grouped by domain, sorted by date (cached)."""
        if self._snapshot is None:
            for domain in self._unsorted:
                self._by_domain[domain].sort(key=lambda o: o.date)
            self._unsorted.clear()
            self._snapshot = dict(self._by_domain)
        return self._snapshot

    @property
    def unique_domains(self) -> int:
        return len(self._by_domain)

    def observations_for(self, domain: str) -> List[Observation]:
        return self.by_domain().get(domain, [])

    def domains_with_cmp(self) -> Tuple[str, ...]:
        return tuple(
            d
            for d, lst in self.by_domain().items()
            if any(o.cmp_key for o in lst)
        )


@dataclass
class PlatformStats:
    """Run counters, reported alongside the results."""

    events: int = 0
    crawls: int = 0
    failures: int = 0
    #: Fan-out details of the most recent sharded run, if any.
    executor: Optional[ExecutorStats] = None

    @property
    def failure_rate(self) -> float:
        return self.failures / self.crawls if self.crawls else 0.0


# ----------------------------------------------------------------------
# Per-event determinism
# ----------------------------------------------------------------------
def event_rng(seed: int, event: ShareEvent) -> random.Random:
    """The RNG driving one crawl's vantage and queue delay.

    Keyed on ``(seed, url, share time)`` instead of drawing from a shared
    sequential stream, so the assignment is identical no matter how many
    crawls ran before it -- the property that makes sharded execution
    bit-identical to the serial loop. Two accepted events can never
    collide on the key: the queue's 48h URL cooldown rejects a second
    submission of the same URL at the same instant.
    """
    return random.Random(
        f"{seed}:vantage:{event.url}:{event.at.isoformat()}"
    )


def crawl_share_event(
    world: World,
    event: ShareEvent,
    config: PlatformConfig,
    capture_id: int,
) -> Capture:
    """Crawl one accepted share event (pure: no shared mutable state)."""
    rng = event_rng(config.seed, event)
    region = "EU" if rng.random() < config.eu_share else "US"
    vantage = Vantage(region=region, address_space="cloud")
    # URLs are visited within a couple of minutes of submission.
    when = event.at + dt.timedelta(seconds=rng.randrange(60, 300))
    return crawl_url(
        world,
        event.url,
        when=when,
        vantage=vantage,
        profile=config.profile,
        capture_id=capture_id,
    )


# ----------------------------------------------------------------------
# Shard task (module-level so the process backend can pickle it)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SocialShardTask:
    """One day-range shard of accepted share events."""

    shard_id: int
    world_ref: WorldRef
    config: PlatformConfig
    #: ``(event, capture_id)`` pairs, in serial acceptance order.
    events: Tuple[Tuple[ShareEvent, int], ...]


@dataclass(frozen=True)
class SocialShardResult:
    shard_id: int
    store: CaptureStore
    failures: int
    captures_seen: int
    overcounted: int


def crawl_social_shard(task: SocialShardTask) -> SocialShardResult:
    """Crawl one shard into a private store (runs inside a worker)."""
    world = resolve_world(task.world_ref)
    engine = DetectionEngine()
    store = CaptureStore(retain_captures=task.config.retain_captures)
    failures = 0
    for event, capture_id in task.events:
        capture = crawl_share_event(world, event, task.config, capture_id)
        if not capture.succeeded:
            failures += 1
        detection = engine.detect(capture)
        store.add(capture, detection.cmp_key)
    return SocialShardResult(
        shard_id=task.shard_id,
        store=store,
        failures=failures,
        captures_seen=engine.captures_seen,
        overcounted=engine.overcounted,
    )


class NetographPlatform:
    """End-to-end social-media measurement pipeline."""

    def __init__(
        self,
        world: World,
        stream: Optional[SocialShareStream] = None,
        config: Optional[PlatformConfig] = None,
        obs: Optional[Observability] = None,
    ):
        self.world = world
        self.stream = stream or SocialShareStream(world)
        self.config = config or PlatformConfig()
        self.obs = resolve_obs(obs)
        self.queue = CaptureQueue(obs=self.obs)
        self.engine = DetectionEngine(obs=self.obs)
        self.stats = PlatformStats()
        self._capture_id = 0
        metrics = self.obs.metrics
        self._m_events = metrics.counter(
            "platform_events_total", "share events seen by the platform"
        )
        self._m_crawls = metrics.counter(
            "platform_crawls_total", "browser crawls by outcome"
        )
        self._h_shard_seconds = metrics.histogram(
            "executor_shard_seconds", "per-shard crawl wall-clock"
        )

    # ------------------------------------------------------------------
    def run(
        self,
        start: dt.date,
        end: dt.date,
        store: Optional[CaptureStore] = None,
        on_day: Optional[Callable[[dt.date], None]] = None,
        executor: Optional[CrawlExecutor] = None,
    ) -> CaptureStore:
        """Run the platform over ``[start, end)`` and return the store.

        Passing an existing *store* continues a previous run (the real
        platform ran continuously for 2.5 years). With an *executor*
        whose config is parallel, the crawl phase is sharded by
        share-event days and fanned out over the worker pool; the result
        is identical to the serial path for the same seed.
        """
        if store is None:
            store = CaptureStore(retain_captures=self.config.retain_captures)
        parallel = executor is not None and executor.config.parallel
        timing = self.obs.enabled
        with self.obs.span(
            "platform.run",
            start=start.isoformat(),
            end=end.isoformat(),
            parallel=parallel,
        ) as run_span:
            pending: List[Tuple[ShareEvent, int]] = []
            crawl_seconds = 0.0
            day = start
            while day < end:
                for event in self.stream.events_for_day(day):
                    self.stats.events += 1
                    self._m_events.inc()
                    if not self.queue.submit(event.url, event.at):
                        continue
                    self._capture_id += 1
                    pending.append((event, self._capture_id))
                if not parallel:
                    # Span-duration timing only; never crawl-visible.
                    batch_start = (
                        time.perf_counter()  # repro-lint: disable=DET002
                        if timing
                        else 0.0
                    )
                    for event, capture_id in pending:
                        self._crawl_into(store, event, capture_id)
                    if timing:
                        crawl_seconds += (
                            time.perf_counter()  # repro-lint: disable=DET002
                            - batch_start
                        )
                    pending.clear()
                self.queue.prune(
                    dt.datetime.combine(day, dt.time()) + dt.timedelta(days=1)
                )
                if on_day is not None:
                    on_day(day)
                day += dt.timedelta(days=1)
            if parallel and pending:
                assert executor is not None
                self._run_sharded(executor, pending, store)
            elif timing:
                self.obs.tracer.record_span(
                    "platform.crawl", crawl_seconds, mode="serial"
                )
            run_span.set(
                events=self.stats.events,
                crawls=self.stats.crawls,
                failures=self.stats.failures,
                skip_rate=round(self.queue.stats.skip_rate, 4),
            )
        return store

    # ------------------------------------------------------------------
    def _crawl_into(
        self, store: CaptureStore, event: ShareEvent, capture_id: int
    ) -> None:
        capture = crawl_share_event(self.world, event, self.config, capture_id)
        self.stats.crawls += 1
        if not capture.succeeded:
            self.stats.failures += 1
            self._m_crawls.inc(outcome="failed")
        else:
            self._m_crawls.inc(outcome="ok")
        detection = self.engine.detect(capture)
        store.add(capture, detection.cmp_key)

    def _run_sharded(
        self,
        executor: CrawlExecutor,
        accepted: List[Tuple[ShareEvent, int]],
        store: CaptureStore,
    ) -> None:
        with self.obs.span(
            "executor.derive_shards",
            backend=executor.config.backend,
            workers=executor.config.workers,
        ) as derive_span:
            n_shards = executor.config.n_shards(len(accepted))
            chunks = partition_grouped(
                accepted, n_shards, key=lambda pair: pair[0].at.date()
            )
            world_ref = world_ref_for_backend(
                self.world, executor.config.backend
            )
            tasks = [
                SocialShardTask(
                    shard_id=i,
                    world_ref=world_ref,
                    config=self.config,
                    events=tuple(chunk),
                )
                for i, chunk in enumerate(chunks)
            ]
            derive_span.set(tasks=len(accepted), shards=len(tasks))
        with self.obs.span(
            "executor.crawl", backend=executor.config.backend
        ) as crawl_span:
            results, seconds, wall = executor.map_shards(
                crawl_social_shard, tasks
            )
            crawl_span.set(shards=len(tasks))
            if self.obs.enabled:
                for task, result, secs in zip(tasks, results, seconds):
                    self.obs.tracer.record_span(
                        "executor.shard",
                        secs,
                        shard=task.shard_id,
                        tasks=len(task.events),
                        crawls=result.store.n_captures,
                        failures=result.failures,
                    )
                    self._h_shard_seconds.observe(secs, pipeline="social")

        # Merge-duration stat only, not crawl-visible state.
        merge_start = time.perf_counter()  # repro-lint: disable=DET002
        exec_stats = ExecutorStats(
            backend=executor.config.backend,
            workers=executor.config.workers,
            wall_seconds=wall,
        )
        with self.obs.span("executor.merge", shards=len(tasks)):
            for task, result, secs in zip(tasks, results, seconds):
                store.merge(result.store)
                self.stats.crawls += result.store.n_captures
                self.stats.failures += result.failures
                self._absorb_shard_metrics(result)
                exec_stats.shards.append(
                    ShardStats(
                        shard_id=task.shard_id,
                        tasks=len(task.events),
                        crawls=result.store.n_captures,
                        failures=result.failures,
                        seconds=secs,
                    )
                )
        exec_stats.merge_seconds = (
            time.perf_counter()  # repro-lint: disable=DET002
            - merge_start
        )
        self.stats.executor = exec_stats

    def _absorb_shard_metrics(self, result: SocialShardResult) -> None:
        """Fold a shard's detection/crawl accounting into this process's
        stats and metrics (detection itself ran inside the worker)."""
        ok = result.store.n_captures - result.failures
        if ok:
            self._m_crawls.inc(ok, outcome="ok")
        if result.failures:
            self._m_crawls.inc(result.failures, outcome="failed")
        matches: Dict[str, int] = {}
        if self.obs.enabled:
            for obs in result.store.observations:
                if obs.cmp_key is not None:
                    matches[obs.cmp_key] = matches.get(obs.cmp_key, 0) + 1
        self.engine.absorb(
            result.captures_seen, result.overcounted, matches
        )
