"""The web-measurement platform (Netograph substitute).

Reproduces the measurement infrastructure of Section 3.2:

* :mod:`repro.crawler.capture` -- the capture schema: per-visit HTTP
  headers, connection metadata, cookies, storage records, screenshot
  descriptors, and the final address-bar URL;
* :mod:`repro.crawler.browser` -- the browser simulator applying crawl
  profiles (aggressive default timeouts vs. extended timeouts);
* :mod:`repro.crawler.queue` -- the capture queue with the paper's
  deduplication rules (same domain within 1 h, same URL within 48 h);
* :mod:`repro.crawler.seeds` -- the social-media URL stream (Reddit plus
  Twitter's 1% sample feed, skewed towards popular URLs by resharing);
* :mod:`repro.crawler.platform` -- orchestration: vantage assignment
  (50% EU / 50% US cloud), crawling, and the capture store;
* :mod:`repro.crawler.toplist_crawl` -- the toplist protocol: six
  crawl configurations plus retries (Section 3.2).
"""

from repro.crawler.browser import CrawlProfile, crawl_url
from repro.crawler.capture import Capture, Observation, Vantage
from repro.crawler.clientstorage import StorageRecord, cmp_from_storage
from repro.crawler.platform import CaptureStore, NetographPlatform, PlatformConfig
from repro.crawler.queue import CaptureQueue
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.crawler.storage import load_store, save_store

__all__ = [
    "Capture",
    "Observation",
    "Vantage",
    "CrawlProfile",
    "crawl_url",
    "CaptureQueue",
    "SocialShareStream",
    "StreamConfig",
    "NetographPlatform",
    "PlatformConfig",
    "CaptureStore",
    "StorageRecord",
    "cmp_from_storage",
    "save_store",
    "load_store",
]
