"""The capture queue with the paper's deduplication rules.

Section 3.4: "We skip a URL if we have captured the same domain in the
last hour or the precise URL in the last 48 hours. This applies to about
40% of all submitted URLs."

The queue tracks submission decisions so the skip rate can be reported
and compared against the paper's 40%.

Implementation notes (this is the one inherently serial phase of a run,
so its per-submit cost is on the critical path):

* Cooldown bookkeeping uses integer epoch-day seconds instead of
  ``datetime`` values -- one conversion per submit replaces a
  ``timedelta`` allocation per cooldown comparison.
* ``host -> registrable domain`` is memoized per queue; the PSL walk
  runs once per distinct host instead of once per submit.
* Decision metrics are accumulated as plain ints and flushed to the
  observability counters on :meth:`prune` (once per simulated day),
  not per submit.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.psl import default_psl
from repro.net.url import URL
from repro.obs import Observability, resolve_obs

DOMAIN_COOLDOWN = dt.timedelta(hours=1)
URL_COOLDOWN = dt.timedelta(hours=48)

_DOMAIN_COOLDOWN_S = int(DOMAIN_COOLDOWN.total_seconds())
_URL_COOLDOWN_S = int(URL_COOLDOWN.total_seconds())


@dataclass
class QueueStats:
    """Counters over the queue's lifetime."""

    submitted: int = 0
    accepted: int = 0
    skipped_domain: int = 0
    skipped_url: int = 0

    @property
    def skipped(self) -> int:
        return self.skipped_domain + self.skipped_url

    @property
    def skip_rate(self) -> float:
        return self.skipped / self.submitted if self.submitted else 0.0


def _ts(when: dt.datetime) -> int:
    """*when* as integer seconds since day-ordinal zero."""
    return (
        when.toordinal() * 86_400
        + when.hour * 3_600
        + when.minute * 60
        + when.second
    )


class CaptureQueue:
    """Decides which submitted URLs are actually crawled."""

    def __init__(self, obs: Optional[Observability] = None) -> None:
        self._last_domain_capture: Dict[str, int] = {}
        self._last_url_capture: Dict[URL, int] = {}
        self._domain_memo: Dict[str, str] = {}
        self.stats = QueueStats()
        self._m_decisions = resolve_obs(obs).metrics.counter(
            "queue_submissions_total",
            "URL submissions by dedup decision (Section 3.4 skip rules)",
        )
        # Metric deltas since the last flush (see module docstring).
        self._pend_accepted = 0
        self._pend_skip_url = 0
        self._pend_skip_domain = 0

    def submit(self, url: URL, now: dt.datetime) -> bool:
        """Submit *url* at time *now*; returns True if it should be
        crawled, False if the dedup rules skip it."""
        return self.submit_at(url, _ts(now))

    def submit_at(self, url: URL, ts: int) -> bool:
        """:meth:`submit` with *ts* already converted by the caller.

        The platform's day loop derives the integer timestamp once and
        shares it with the crawl-phase key derivation, skipping the
        per-submit datetime field reads.
        """
        stats = self.stats
        stats.submitted += 1
        if url.fragment:
            url = url.without_fragment()

        last_url = self._last_url_capture.get(url)
        if last_url is not None and ts - last_url < _URL_COOLDOWN_S:
            stats.skipped_url += 1
            self._pend_skip_url += 1
            return False
        domain = self._domain_memo.get(url.host)
        if domain is None:
            reg = default_psl().registrable_domain(url.host)
            domain = reg if reg is not None else url.host
            self._domain_memo[url.host] = domain
        last_domain = self._last_domain_capture.get(domain)
        if last_domain is not None and ts - last_domain < _DOMAIN_COOLDOWN_S:
            stats.skipped_domain += 1
            self._pend_skip_domain += 1
            return False

        stats.accepted += 1
        self._pend_accepted += 1
        # Delete-before-set keeps both dicts ordered by timestamp even
        # when a key is re-accepted after its cooldown (a plain value
        # update would leave it at its original insertion position).
        # Submissions arrive chronologically, so insertion order ==
        # timestamp order -- the invariant prune() relies on. Equal
        # integer timestamps (events colliding on the same second, e.g.
        # at day boundaries) tie-break by feed order: the earlier
        # submission is inserted first and stays first, which the
        # streaming engine's watermark finalization depends on (pinned
        # by tests/test_boundary_fixes.py).
        urls = self._last_url_capture
        if url in urls:
            del urls[url]
        urls[url] = ts
        domains = self._last_domain_capture
        if domain in domains:
            del domains[domain]
        domains[domain] = ts
        return True

    def prune(self, now: dt.datetime) -> None:
        """Drop expired cooldown entries to bound memory on long runs.

        Both dicts are timestamp-ordered (see :meth:`submit_at`), so the
        expired entries form a prefix: the scan stops at the first live
        entry, making each prune O(expired) instead of O(tracked). Also
        flushes the accumulated decision metrics.
        """
        ts = _ts(now)
        for tracked, cooldown in (
            (self._last_url_capture, _URL_COOLDOWN_S),
            (self._last_domain_capture, _DOMAIN_COOLDOWN_S),
        ):
            expired = []
            for key, t in tracked.items():
                if ts - t < cooldown:
                    break
                expired.append(key)
            for key in expired:
                del tracked[key]
        self.flush_metrics()

    def flush_metrics(self) -> None:
        """Publish decision deltas accumulated since the last flush."""
        if self._pend_accepted:
            self._m_decisions.inc(self._pend_accepted, decision="accepted")
            self._pend_accepted = 0
        if self._pend_skip_url:
            self._m_decisions.inc(self._pend_skip_url, decision="skipped_url")
            self._pend_skip_url = 0
        if self._pend_skip_domain:
            self._m_decisions.inc(
                self._pend_skip_domain, decision="skipped_domain"
            )
            self._pend_skip_domain = 0

    # ------------------------------------------------------------------
    # Checkpoint serialization (repro.stream)
    # ------------------------------------------------------------------
    def state_payload(self) -> dict:
        """JSON-serializable cooldown + stats state.

        The cooldown dicts are serialized as ordered ``[key, ts]`` pair
        lists -- their insertion (== timestamp) order is load-bearing
        for :meth:`prune`'s prefix-scan invariant and for tie-breaking,
        so :meth:`restore_state` re-inserts in payload order. Pending
        metric deltas are flushed first so the payload never carries
        half-published counters.
        """
        self.flush_metrics()
        return {
            "urls": [
                [str(url), ts] for url, ts in self._last_url_capture.items()
            ],
            "domains": list(
                [d, ts] for d, ts in self._last_domain_capture.items()
            ),
            "stats": {
                "submitted": self.stats.submitted,
                "accepted": self.stats.accepted,
                "skipped_domain": self.stats.skipped_domain,
                "skipped_url": self.stats.skipped_url,
            },
        }

    def restore_state(self, payload: dict) -> None:
        """Exact inverse of :meth:`state_payload` (fresh queue only)."""
        if self._last_url_capture or self._last_domain_capture:
            raise ValueError("restore_state requires a fresh queue")
        self._last_url_capture = {
            URL.parse(raw): ts for raw, ts in payload["urls"]
        }
        self._last_domain_capture = {d: ts for d, ts in payload["domains"]}
        stats = payload["stats"]
        self.stats = QueueStats(
            submitted=stats["submitted"],
            accepted=stats["accepted"],
            skipped_domain=stats["skipped_domain"],
            skipped_url=stats["skipped_url"],
        )

    @staticmethod
    def _domain_of(url: URL) -> str:
        reg = default_psl().registrable_domain(url.host)
        return reg if reg is not None else url.host
