"""The capture queue with the paper's deduplication rules.

Section 3.4: "We skip a URL if we have captured the same domain in the
last hour or the precise URL in the last 48 hours. This applies to about
40% of all submitted URLs."

The queue tracks submission decisions so the skip rate can be reported
and compared against the paper's 40%.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.psl import default_psl
from repro.net.url import URL
from repro.obs import Observability, resolve_obs

DOMAIN_COOLDOWN = dt.timedelta(hours=1)
URL_COOLDOWN = dt.timedelta(hours=48)


@dataclass
class QueueStats:
    """Counters over the queue's lifetime."""

    submitted: int = 0
    accepted: int = 0
    skipped_domain: int = 0
    skipped_url: int = 0

    @property
    def skipped(self) -> int:
        return self.skipped_domain + self.skipped_url

    @property
    def skip_rate(self) -> float:
        return self.skipped / self.submitted if self.submitted else 0.0


class CaptureQueue:
    """Decides which submitted URLs are actually crawled."""

    def __init__(self, obs: Optional[Observability] = None) -> None:
        self._last_domain_capture: Dict[str, dt.datetime] = {}
        self._last_url_capture: Dict[URL, dt.datetime] = {}
        self.stats = QueueStats()
        self._m_decisions = resolve_obs(obs).metrics.counter(
            "queue_submissions_total",
            "URL submissions by dedup decision (Section 3.4 skip rules)",
        )

    def submit(self, url: URL, now: dt.datetime) -> bool:
        """Submit *url* at time *now*; returns True if it should be
        crawled, False if the dedup rules skip it."""
        self.stats.submitted += 1
        url = url.without_fragment()
        domain = self._domain_of(url)

        last_url = self._last_url_capture.get(url)
        if last_url is not None and now - last_url < URL_COOLDOWN:
            self.stats.skipped_url += 1
            self._m_decisions.inc(decision="skipped_url")
            return False
        last_domain = self._last_domain_capture.get(domain)
        if last_domain is not None and now - last_domain < DOMAIN_COOLDOWN:
            self.stats.skipped_domain += 1
            self._m_decisions.inc(decision="skipped_domain")
            return False

        self.stats.accepted += 1
        self._m_decisions.inc(decision="accepted")
        self._last_url_capture[url] = now
        self._last_domain_capture[domain] = now
        return True

    def prune(self, now: dt.datetime) -> None:
        """Drop expired cooldown entries to bound memory on long runs."""
        self._last_url_capture = {
            u: t for u, t in self._last_url_capture.items()
            if now - t < URL_COOLDOWN
        }
        self._last_domain_capture = {
            d: t for d, t in self._last_domain_capture.items()
            if now - t < DOMAIN_COOLDOWN
        }

    @staticmethod
    def _domain_of(url: URL) -> str:
        reg = default_psl().registrable_domain(url.host)
        return reg if reg is not None else url.host
