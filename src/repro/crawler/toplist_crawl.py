"""The toplist-based crawl protocol (Section 3.2).

To compare with related work, the paper crawls the Tranco top 10k with a
dedicated setup:

1. every domain is resolved to a seed URL via the TLS/TCP probe protocol
   (:mod:`repro.net.probe`), retried three times over a week;
2. every URL is crawled six times in immediate succession:

   * from a European university network with the crawler's default
     configuration,
   * again with an extended timeout,
   * with German and with British English as the browser language,
   * and from the US and EU cloud task queues as a control group;

3. unsuccessful captures are retried three times over the span of a
   week.

All toplist crawls additionally store the DOM tree and a full-page
screenshot, which the customization analysis (I3) consumes.
"""

from __future__ import annotations

import dataclasses
import datetime as dt
import pickle
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.crawler.browser import CrawlProfile, crawl_url
from repro.crawler.capture import Capture, Vantage
from repro.crawler.executor import (
    CrawlExecutor,
    ExecutorStats,
    ShardStats,
    WorldRef,
    partition,
    resolve_world,
    world_ref_for_backend,
)
from repro.faults import (
    Clock,
    FaultSchedule,
    FaultTally,
    RetryPolicy,
    VirtualClock,
    WorkerCrash,
    run_with_retries,
)
from repro.net import publish_cache_gauges
from repro.net.probe import (
    ProbeResult,
    probe_from_record,
    probe_to_record,
    resolve_toplist,
)
from repro.obs import Observability, resolve_obs
from repro.web.worldgen import World

if TYPE_CHECKING:  # pragma: no cover - import cycle (cache uses storage)
    from repro.cache import ArtifactCache, Fingerprint

#: The six crawl configurations, in Table 1 column order.
CRAWL_CONFIGS: Tuple[Tuple[str, Vantage, CrawlProfile], ...] = (
    (
        "us-cloud",
        Vantage("US", "cloud"),
        CrawlProfile(name="default", cutoff=10.0, store_dom=True),
    ),
    (
        "eu-cloud",
        Vantage("EU", "cloud"),
        CrawlProfile(name="default", cutoff=10.0, store_dom=True),
    ),
    (
        "eu-univ-default",
        Vantage("EU", "university"),
        CrawlProfile(name="default", cutoff=10.0, store_dom=True,
                     full_page_screenshot=True),
    ),
    (
        "eu-univ-extended",
        Vantage("EU", "university"),
        CrawlProfile(name="extended", cutoff=120.0, store_dom=True,
                     full_page_screenshot=True),
    ),
    (
        "eu-univ-de",
        Vantage("EU", "university"),
        CrawlProfile(name="extended", cutoff=120.0, language="de-DE",
                     store_dom=True, full_page_screenshot=True),
    ),
    (
        "eu-univ-en-gb",
        Vantage("EU", "university"),
        CrawlProfile(name="extended", cutoff=120.0, language="en-GB",
                     store_dom=True, full_page_screenshot=True),
    ),
)

CONFIG_NAMES: Tuple[str, ...] = tuple(name for name, _, _ in CRAWL_CONFIGS)

_CONFIG_BY_NAME: Dict[str, Tuple[Vantage, CrawlProfile]] = {
    name: (vantage, profile) for name, vantage, profile in CRAWL_CONFIGS
}


@dataclass
class ToplistCrawlResult:
    """Everything a toplist crawl produces."""

    #: Probe outcome per toplist domain.
    probes: List[ProbeResult]
    #: Config name -> domain -> final capture (after retries).
    captures: Dict[str, Dict[str, Capture]] = field(default_factory=dict)
    #: Fan-out details when the crawl ran on a parallel executor.
    executor_stats: Optional[ExecutorStats] = None
    #: Fault/retry accounting of the run (empty outside chaos).
    faults: FaultTally = field(default_factory=FaultTally)

    @property
    def reachable_domains(self) -> Tuple[str, ...]:
        return tuple(p.domain for p in self.probes if p.reachable)

    def captures_for(self, config_name: str) -> Dict[str, Capture]:
        if config_name not in self.captures:
            raise KeyError(
                f"unknown config {config_name!r}; ran: {sorted(self.captures)}"
            )
        return self.captures[config_name]


@dataclass(frozen=True)
class ToplistShardTask:
    """One domain-range shard of the toplist protocol."""

    shard_id: int
    world_ref: WorldRef
    #: Probes with a resolved seed URL, in toplist order.
    probes: Tuple[ProbeResult, ...]
    config_names: Tuple[str, ...]
    when: dt.date
    retries: int
    faults: Optional[FaultSchedule] = None
    retry_policy: Optional[RetryPolicy] = None
    #: Resume bookkeeping (set by :func:`resume_toplist_shard`): skip
    #: flattened ``(config, probe)`` work items below ``start_index``
    #: and seed state from ``checkpoint``.
    start_index: int = 0
    shard_attempt: int = 0
    checkpoint: Optional["ToplistShardResult"] = None


@dataclass(frozen=True)
class ToplistShardResult:
    shard_id: int
    #: Config name -> domain -> final capture, domains in shard order.
    captures: Dict[str, Dict[str, Capture]]
    crawls: int
    failures: int
    faults: FaultTally = field(default_factory=FaultTally)


def crawl_toplist_shard(task: ToplistShardTask) -> ToplistShardResult:
    """Run all requested configs over one probe slice (inside a worker).

    Work items are the flattened ``config x probe`` pairs, visited
    config-major so merged dict insertion order matches the serial path.
    A chaos schedule may kill the worker at a scheduled item index: the
    shard raises :class:`WorkerCrash` carrying its partial result, and
    the executor re-submits a task resumed from that checkpoint.
    """
    crawler = ToplistCrawler(
        resolve_world(task.world_ref),
        task.retries,
        faults=task.faults,
        retry=task.retry_policy,
    )
    captures: Dict[str, Dict[str, Capture]] = {}
    tally = FaultTally()
    crawls = failures = 0
    if task.checkpoint is not None:
        checkpoint = task.checkpoint
        captures = {
            name: dict(per) for name, per in checkpoint.captures.items()
        }
        crawls = checkpoint.crawls
        failures = checkpoint.failures
        tally.merge(checkpoint.faults)
    n_items = len(task.config_names) * len(task.probes)
    crash_at = (
        task.faults.crash_point(task.shard_id, n_items, task.shard_attempt)
        if task.faults is not None
        else None
    )
    clock = VirtualClock()
    index = -1
    for name in task.config_names:
        vantage, profile = _CONFIG_BY_NAME[name]
        per_domain = captures.setdefault(name, {})
        for probe in task.probes:
            index += 1
            if index < task.start_index:
                continue
            if crash_at is not None and index == crash_at:
                raise WorkerCrash(
                    task.shard_id,
                    done=index,
                    checkpoint=ToplistShardResult(
                        shard_id=task.shard_id,
                        captures=captures,
                        crawls=crawls,
                        failures=failures,
                        faults=tally,
                    ),
                )
            capture = crawler._crawl_with_retries(
                probe, task.when, vantage, profile, tally=tally, clock=clock
            )
            per_domain[probe.domain] = capture
            crawls += 1
            if not capture.succeeded:
                failures += 1
    return ToplistShardResult(
        shard_id=task.shard_id,
        captures=captures,
        crawls=crawls,
        failures=failures,
        faults=tally,
    )


def resume_toplist_shard(
    task: ToplistShardTask, crash: WorkerCrash
) -> ToplistShardTask:
    """The task that continues *task* past *crash* (executor callback)."""
    return dataclasses.replace(
        task,
        start_index=crash.done,
        shard_attempt=task.shard_attempt + 1,
        checkpoint=crash.checkpoint,
    )


class ToplistCrawler:
    """Runs the six-configuration protocol over a toplist."""

    def __init__(
        self,
        world: World,
        retries: int = 3,
        obs: Optional[Observability] = None,
        faults: Optional[FaultSchedule] = None,
        retry: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
    ):
        self.world = world
        self.retries = retries
        self.obs = resolve_obs(obs)
        #: Chaos schedule injected into probes and crawls; ``None`` (the
        #: default) keeps the protocol bit-identical to a build without
        #: repro.faults.
        self.faults = faults
        #: Backoff policy for same-date retries of injected faults.
        self.retry = retry
        #: Waits out retry backoff; virtual by default so chaos runs
        #: never sleep for real.
        self.clock: Clock = clock if clock is not None else VirtualClock()
        metrics = self.obs.metrics
        self._m_crawls = metrics.counter(
            "toplist_crawls_total",
            "final toplist captures by config and outcome",
        )
        self._m_probes = metrics.counter(
            "toplist_probes_total", "toplist domains by probe outcome"
        )
        self._h_shard_seconds = metrics.histogram(
            "executor_shard_seconds", "per-shard crawl wall-clock"
        )
        self._m_faults = metrics.counter(
            "crawl_faults_total", "faults injected into crawls, by kind"
        )
        self._m_retries = metrics.counter(
            "crawl_retries_total", "crawl retry attempts by outcome"
        )

    def run(
        self,
        domains: Sequence[str],
        when: dt.date,
        configs: Sequence[str] = CONFIG_NAMES,
        executor: Optional[CrawlExecutor] = None,
        cache: Optional["ArtifactCache"] = None,
        probe_fingerprint: Optional["Fingerprint"] = None,
    ) -> ToplistCrawlResult:
        """Crawl *domains* around date *when* under the given configs.

        With a parallel *executor* the reachable probes are partitioned
        into contiguous domain ranges and each range runs every config on
        a worker; crawls are deterministic per ``(world, url, date,
        config)``, so the result is identical to the serial path.

        With a *cache* and *probe_fingerprint*, the seed-URL resolution
        phase is served from the artifact cache when a fresh entry
        exists (probing is deterministic, so cached probes are
        bit-identical to recomputed ones) and populated on a miss. The
        crawl phase itself is cached one level up, where whole derived
        analyses can be skipped (:mod:`repro.core.pipeline`).
        """
        with self.obs.span(
            "toplist.run", domains=len(domains), configs=len(configs)
        ) as run_span:
            with self.obs.span("toplist.probe") as probe_span:
                probes = self._resolve_probes(
                    domains, cache, probe_fingerprint
                )
            result = ToplistCrawlResult(probes=probes)
            wanted = {
                name: _CONFIG_BY_NAME[name]
                for name in _CONFIG_BY_NAME
                if name in configs
            }
            missing = set(configs) - set(wanted)
            if missing:
                raise KeyError(f"unknown crawl configs: {sorted(missing)}")
            crawlable = tuple(p for p in probes if p.seed_url is not None)
            if self.obs.enabled:
                reachable = sum(1 for p in probes if p.reachable)
                probe_span.set(
                    domains=len(probes), reachable=reachable,
                    crawlable=len(crawlable),
                )
                if reachable:
                    self._m_probes.inc(reachable, outcome="reachable")
                if len(probes) - reachable:
                    self._m_probes.inc(
                        len(probes) - reachable, outcome="unreachable"
                    )
            if executor is not None and executor.config.parallel and crawlable:
                self._run_sharded(executor, crawlable, wanted, when, result)
                self._meter_faults(result.faults)
                publish_cache_gauges(self.obs)
                run_span.set(crawls=result.executor_stats.crawls)
                return result
            for name, (vantage, profile) in wanted.items():
                with self.obs.span("toplist.config", config=name) as cfg_span:
                    per_domain: Dict[str, Capture] = {}
                    for probe in crawlable:
                        capture = self._crawl_with_retries(
                            probe,
                            when,
                            vantage,
                            profile,
                            tally=result.faults,
                            clock=self.clock,
                        )
                        per_domain[probe.domain] = capture
                    cfg_span.set(
                        domains=len(per_domain),
                        failures=self._count_config(name, per_domain),
                    )
                result.captures[name] = per_domain
            self._meter_faults(result.faults)
            publish_cache_gauges(self.obs)
        return result

    def _resolve_probes(
        self,
        domains: Sequence[str],
        cache: Optional["ArtifactCache"],
        fingerprint: Optional["Fingerprint"],
    ) -> List[ProbeResult]:
        """Seed-URL resolution, served from the artifact cache if possible."""
        caching = cache is not None and fingerprint is not None
        if caching:
            payload = cache.load_payload(fingerprint)
            if payload is not None:
                return [probe_from_record(rec) for rec in payload]
        probes = resolve_toplist(
            domains, self.world, attempts=self.retries, faults=self.faults
        )
        if caching:
            cache.save_payload(
                fingerprint, [probe_to_record(p) for p in probes]
            )
        return probes

    def _count_config(
        self, name: str, per_domain: Dict[str, Capture]
    ) -> int:
        """Meter one config's final captures; returns the failure count."""
        if not self.obs.enabled:
            return 0
        failed = sum(1 for c in per_domain.values() if not c.succeeded)
        # A final capture that both failed and carries a fault kind lost
        # its whole retry budget to injected faults; keep it countable
        # separately so ok + failed + retries_exhausted == domains.
        exhausted = sum(
            1
            for c in per_domain.values()
            if not c.succeeded and c.fault is not None
        )
        if len(per_domain) - failed:
            self._m_crawls.inc(
                len(per_domain) - failed, config=name, outcome="ok"
            )
        if failed - exhausted:
            self._m_crawls.inc(
                failed - exhausted, config=name, outcome="failed"
            )
        if exhausted:
            self._m_crawls.inc(
                exhausted, config=name, outcome="retries_exhausted"
            )
        return failed

    def _meter_faults(self, tally: FaultTally) -> None:
        """Publish a run's fault/retry tally to the metrics registry."""
        for kind, count in sorted(tally.by_kind.items()):
            self._m_faults.inc(count, kind=kind)
        if tally.recovered:
            self._m_retries.inc(tally.recovered, outcome="recovered")
        if tally.exhausted:
            self._m_retries.inc(tally.exhausted, outcome="exhausted")

    def _run_sharded(
        self,
        executor: CrawlExecutor,
        crawlable: Tuple[ProbeResult, ...],
        wanted: Dict[str, Tuple[Vantage, CrawlProfile]],
        when: dt.date,
        result: ToplistCrawlResult,
    ) -> None:
        with self.obs.span(
            "executor.derive_shards",
            backend=executor.config.backend,
            workers=executor.config.workers,
        ) as derive_span:
            n_shards = executor.config.n_shards(len(crawlable))
            chunks = partition(crawlable, n_shards)
            world_ref = world_ref_for_backend(
                self.world, executor.config.backend
            )
            config_names = tuple(wanted)
            tasks = [
                ToplistShardTask(
                    shard_id=i,
                    world_ref=world_ref,
                    probes=tuple(chunk),
                    config_names=config_names,
                    when=when,
                    retries=self.retries,
                    faults=self.faults,
                    retry_policy=self.retry,
                )
                for i, chunk in enumerate(chunks)
            ]
            derive_span.set(tasks=len(crawlable), shards=len(tasks))
        with self.obs.span(
            "executor.crawl", backend=executor.config.backend
        ) as crawl_span:
            shard_results, seconds, wall, resumes = executor.map_shards(
                crawl_toplist_shard, tasks, resume=resume_toplist_shard
            )
            crawl_span.set(shards=len(tasks))
            if self.obs.enabled:
                for task, shard_result, secs in zip(
                    tasks, shard_results, seconds
                ):
                    self.obs.tracer.record_span(
                        "executor.shard",
                        secs,
                        shard=task.shard_id,
                        tasks=len(task.probes),
                        crawls=shard_result.crawls,
                        failures=shard_result.failures,
                    )
                    self._h_shard_seconds.observe(secs, pipeline="toplist")
        # Payload accounting mirrors the social platform: only the
        # process backend serializes shard payloads.
        if executor.config.backend == "process":
            payload_sizes = [
                len(pickle.dumps(t, protocol=pickle.HIGHEST_PROTOCOL))
                for t in tasks
            ]
        else:
            payload_sizes = [0] * len(tasks)
        # Merge-duration stat only, not crawl-visible state.
        merge_start = time.perf_counter()  # repro-lint: disable=DET002
        stats = ExecutorStats(
            backend=executor.config.backend,
            workers=executor.config.workers,
            wall_seconds=wall,
        )
        with self.obs.span("executor.merge", shards=len(tasks)):
            # Config-major merge in shard order reproduces the serial
            # insertion order of every ``captures[name]`` dict.
            for name in config_names:
                merged: Dict[str, Capture] = {}
                for shard_result in shard_results:
                    merged.update(shard_result.captures[name])
                result.captures[name] = merged
                self._count_config(name, merged)
            for task, shard_result, secs, n_resumes, n_bytes in zip(
                tasks, shard_results, seconds, resumes, payload_sizes
            ):
                result.faults.merge(shard_result.faults)
                stats.shards.append(
                    ShardStats(
                        shard_id=task.shard_id,
                        tasks=len(task.probes),
                        crawls=shard_result.crawls,
                        failures=shard_result.failures,
                        seconds=secs,
                        resumes=n_resumes,
                        payload_bytes=n_bytes,
                    )
                )
        stats.merge_seconds = (
            time.perf_counter()  # repro-lint: disable=DET002
            - merge_start
        )
        result.executor_stats = stats

    def _crawl_with_retries(
        self,
        probe: ProbeResult,
        when: dt.date,
        vantage: Vantage,
        profile: CrawlProfile,
        tally: Optional[FaultTally] = None,
        clock: Optional[Clock] = None,
    ) -> Capture:
        assert probe.seed_url is not None
        url = probe.seed_url
        capture: Optional[Capture] = None
        # The fault-schedule attempt counter spans both retry loops, so a
        # transient fault burning the same-date budget stays burnt when
        # the crawl moves on to a later date.
        fault_attempts = [0]
        # Unsuccessful captures are retried over the span of a week; the
        # date offset re-rolls temporary unavailability. Injected faults
        # are retried *within* each date first: backoff runs through the
        # clock, never the crawl timestamp, so a recovered crawl is
        # bit-identical to its fault-free counterpart.
        for attempt in range(self.retries + 1):
            ts = dt.datetime.combine(
                when + dt.timedelta(days=2 * attempt), dt.time(hour=12)
            )

            def attempt_fn(_retry_no: int, ts: dt.datetime = ts) -> Capture:
                n = fault_attempts[0]
                fault_attempts[0] += 1
                return crawl_url(
                    self.world,
                    url,
                    when=ts,
                    vantage=vantage,
                    profile=profile,
                    faults=self.faults,
                    attempt=n,
                )

            if self.faults is None:
                capture = attempt_fn(0)
            else:
                capture = run_with_retries(
                    attempt_fn,
                    key=f"{url}@{ts.isoformat()}",
                    policy=self.retry,
                    clock=clock,
                    tally=tally,
                )
            if capture.succeeded:
                return capture
        assert capture is not None
        return capture
