"""The toplist-based crawl protocol (Section 3.2).

To compare with related work, the paper crawls the Tranco top 10k with a
dedicated setup:

1. every domain is resolved to a seed URL via the TLS/TCP probe protocol
   (:mod:`repro.net.probe`), retried three times over a week;
2. every URL is crawled six times in immediate succession:

   * from a European university network with the crawler's default
     configuration,
   * again with an extended timeout,
   * with German and with British English as the browser language,
   * and from the US and EU cloud task queues as a control group;

3. unsuccessful captures are retried three times over the span of a
   week.

All toplist crawls additionally store the DOM tree and a full-page
screenshot, which the customization analysis (I3) consumes.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crawler.browser import CrawlProfile, crawl_url
from repro.crawler.capture import Capture, Vantage
from repro.net.probe import ProbeResult, resolve_toplist
from repro.web.worldgen import World

#: The six crawl configurations, in Table 1 column order.
CRAWL_CONFIGS: Tuple[Tuple[str, Vantage, CrawlProfile], ...] = (
    (
        "us-cloud",
        Vantage("US", "cloud"),
        CrawlProfile(name="default", cutoff=10.0, store_dom=True),
    ),
    (
        "eu-cloud",
        Vantage("EU", "cloud"),
        CrawlProfile(name="default", cutoff=10.0, store_dom=True),
    ),
    (
        "eu-univ-default",
        Vantage("EU", "university"),
        CrawlProfile(name="default", cutoff=10.0, store_dom=True,
                     full_page_screenshot=True),
    ),
    (
        "eu-univ-extended",
        Vantage("EU", "university"),
        CrawlProfile(name="extended", cutoff=120.0, store_dom=True,
                     full_page_screenshot=True),
    ),
    (
        "eu-univ-de",
        Vantage("EU", "university"),
        CrawlProfile(name="extended", cutoff=120.0, language="de-DE",
                     store_dom=True, full_page_screenshot=True),
    ),
    (
        "eu-univ-en-gb",
        Vantage("EU", "university"),
        CrawlProfile(name="extended", cutoff=120.0, language="en-GB",
                     store_dom=True, full_page_screenshot=True),
    ),
)

CONFIG_NAMES: Tuple[str, ...] = tuple(name for name, _, _ in CRAWL_CONFIGS)


@dataclass
class ToplistCrawlResult:
    """Everything a toplist crawl produces."""

    #: Probe outcome per toplist domain.
    probes: List[ProbeResult]
    #: Config name -> domain -> final capture (after retries).
    captures: Dict[str, Dict[str, Capture]] = field(default_factory=dict)

    @property
    def reachable_domains(self) -> Tuple[str, ...]:
        return tuple(p.domain for p in self.probes if p.reachable)

    def captures_for(self, config_name: str) -> Dict[str, Capture]:
        if config_name not in self.captures:
            raise KeyError(
                f"unknown config {config_name!r}; ran: {sorted(self.captures)}"
            )
        return self.captures[config_name]


class ToplistCrawler:
    """Runs the six-configuration protocol over a toplist."""

    def __init__(self, world: World, retries: int = 3):
        self.world = world
        self.retries = retries

    def run(
        self,
        domains: Sequence[str],
        when: dt.date,
        configs: Sequence[str] = CONFIG_NAMES,
    ) -> ToplistCrawlResult:
        """Crawl *domains* around date *when* under the given configs."""
        probes = resolve_toplist(domains, self.world, attempts=self.retries)
        result = ToplistCrawlResult(probes=probes)
        wanted = {
            name: (vantage, profile)
            for name, vantage, profile in CRAWL_CONFIGS
            if name in configs
        }
        missing = set(configs) - set(wanted)
        if missing:
            raise KeyError(f"unknown crawl configs: {sorted(missing)}")
        for name, (vantage, profile) in wanted.items():
            per_domain: Dict[str, Capture] = {}
            for probe in probes:
                if probe.seed_url is None:
                    continue
                capture = self._crawl_with_retries(
                    probe, when, vantage, profile
                )
                per_domain[probe.domain] = capture
            result.captures[name] = per_domain
        return result

    def _crawl_with_retries(
        self,
        probe: ProbeResult,
        when: dt.date,
        vantage: Vantage,
        profile: CrawlProfile,
    ) -> Capture:
        assert probe.seed_url is not None
        capture: Optional[Capture] = None
        # Unsuccessful captures are retried over the span of a week; the
        # date offset re-rolls temporary unavailability.
        for attempt in range(self.retries + 1):
            ts = dt.datetime.combine(
                when + dt.timedelta(days=2 * attempt), dt.time(hour=12)
            )
            capture = crawl_url(
                self.world,
                probe.seed_url,
                when=ts,
                vantage=vantage,
                profile=profile,
            )
            if capture.succeeded:
                return capture
        assert capture is not None
        return capture
