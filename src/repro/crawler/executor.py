"""Sharded parallel crawl executor.

The real platform performed 161M crawls over 2.5 years (Section 3.2) --
a workload that only makes sense spread over many machines. This module
is the reproduction's equivalent substrate: it partitions a crawl
workload into independent *shards*, runs them on a worker pool, and
merges the per-shard results back into one queryable store.

The key enabler is **order-independent determinism**. Every source of
randomness in a crawl is derived from stable keys -- the page render from
``(world seed, url, date, visitor)``, the vantage/delay assignment from
``(platform seed, url, share time)`` -- so a crawl's outcome never
depends on how many crawls ran before it. Serial and parallel runs of
the same seed therefore produce *identical* observation sets, for any
worker count, backend, or shard layout. ``tests/test_executor.py``
enforces this contract.

Three backends are supported:

* ``"serial"`` -- run shards inline (also used when ``workers == 1``);
* ``"thread"`` -- a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Shards share the caller's :class:`~repro.web.worldgen.World`; useful
  on free-threaded builds and for I/O-bound oracle implementations;
* ``"process"`` -- a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Shard tasks carry the :class:`~repro.web.worldgen.WorldConfig` instead
  of the world itself; each worker process lazily regenerates (and
  caches) its own world, which is cheap because generation is lazy and
  per-site deterministic.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.faults.inject import WorkerCrash
from repro.web.lru import BoundedLRU
from repro.web.worldgen import World, WorldConfig

T = TypeVar("T")
R = TypeVar("R")

#: A shard crashing more often than this is a bug, not chaos.
MAX_RESUMES = 8

#: Supported worker-pool backends.
BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecutorConfig:
    """How a crawl workload is parallelized.

    ``workers=1`` (the default) always takes the plain serial path, so an
    executor-aware call site degrades to exactly today's single-loop
    behaviour when parallelism is not requested.
    """

    workers: int = 1
    backend: str = "thread"
    #: Shards per worker; >1 lets the pool balance uneven shard costs.
    shards_per_worker: int = 4

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.shards_per_worker < 1:
            raise ValueError("shards_per_worker must be >= 1")

    @property
    def parallel(self) -> bool:
        """True if this config actually fans out to a worker pool."""
        return self.workers > 1 and self.backend != "serial"

    def n_shards(self, n_tasks: int) -> int:
        """How many shards to derive for a workload of *n_tasks* items."""
        if not self.parallel or n_tasks <= 1:
            return 1
        return max(1, min(n_tasks, self.workers * self.shards_per_worker))


@dataclass(frozen=True)
class ShardStats:
    """Counters for one executed shard."""

    shard_id: int
    #: Work items (events / probed domains) assigned to the shard.
    tasks: int
    #: Browser crawls performed (includes per-config and retry crawls).
    crawls: int
    failures: int
    #: Wall-clock seconds spent inside the shard function.
    seconds: float
    #: Times the shard's worker crashed and was resumed from its
    #: checkpoint (0 outside chaos runs).
    resumes: int = 0
    #: Pickled size of the shard's payload in bytes (0 for shared-memory
    #: backends, which never serialize it). The process backend ships
    #: ``(world ref, shard spec)`` recipes, so this stays a few ints per
    #: crawl -- the throughput benchmark reports it per shard to keep
    #: serialization regressions attributable.
    payload_bytes: int = 0


@dataclass
class ExecutorStats:
    """What a sharded run did, surfaced next to the platform counters."""

    backend: str
    workers: int
    shards: List[ShardStats] = field(default_factory=list)
    #: Wall-clock of the whole fan-out (pool setup + shards + collection).
    wall_seconds: float = 0.0
    #: Time spent merging per-shard stores into the caller's store.
    merge_seconds: float = 0.0

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def crawls(self) -> int:
        return sum(s.crawls for s in self.shards)

    @property
    def failures(self) -> int:
        return sum(s.failures for s in self.shards)

    @property
    def resumes(self) -> int:
        """Worker crashes recovered by checkpoint/resume."""
        return sum(s.resumes for s in self.shards)

    @property
    def busy_seconds(self) -> float:
        """Summed per-shard compute time (> wall_seconds when parallel)."""
        return sum(s.seconds for s in self.shards)

    @property
    def payload_bytes(self) -> int:
        """Total serialized payload shipped to workers (0 when shared)."""
        return sum(s.payload_bytes for s in self.shards)

    def summary(self) -> str:
        return (
            f"{self.n_shards} shards on {self.workers} {self.backend} "
            f"worker(s): {self.crawls} crawls ({self.failures} failed), "
            f"{self.wall_seconds:.2f}s wall, {self.busy_seconds:.2f}s busy, "
            f"{self.merge_seconds:.3f}s merge"
        )


# ----------------------------------------------------------------------
# Shard derivation
# ----------------------------------------------------------------------
def partition(items: Sequence[T], n_shards: int) -> List[List[T]]:
    """Split *items* into at most *n_shards* contiguous, balanced runs.

    Chunk sizes differ by at most one and order is preserved, so merging
    shard results in shard order reproduces the serial iteration order.
    """
    n = len(items)
    if n == 0:
        return []
    n_shards = max(1, min(n_shards, n))
    base, extra = divmod(n, n_shards)
    chunks: List[List[T]] = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


def partition_grouped(
    items: Sequence[T], n_shards: int, key: Callable[[T], object]
) -> List[List[T]]:
    """Partition *items* contiguously, preferring splits at *key* edges.

    This is how the social pipeline derives shards from share-event days:
    consecutive items with equal keys (events of the same day) stay in
    the same shard whenever there are at least as many groups as shards.
    With fewer groups than shards the split falls back to a plain even
    partition -- valid because crawl outcomes are order-independent.
    """
    n = len(items)
    if n == 0:
        return []
    if n_shards <= 1:
        return [list(items)]

    groups: List[List[T]] = []
    last_key: object = object()
    for item in items:
        k = key(item)
        if not groups or k != last_key:
            groups.append([item])
            last_key = k
        else:
            groups[-1].append(item)

    if len(groups) < n_shards:
        return partition(items, n_shards)

    # Greedy contiguous packing towards equal item counts per shard.
    shards: List[List[T]] = []
    current: List[T] = []
    placed = 0
    for index, group in enumerate(groups):
        groups_left = len(groups) - index - 1
        current.extend(group)
        threshold = (len(shards) + 1) * n / n_shards
        must_keep_open = groups_left < (n_shards - len(shards) - 1)
        if (
            len(shards) < n_shards - 1
            and not must_keep_open
            and placed + len(current) >= threshold
        ):
            shards.append(current)
            placed += len(current)
            current = []
    if current:
        shards.append(current)
    return shards


# ----------------------------------------------------------------------
# World transfer to workers
# ----------------------------------------------------------------------
#: Per-process cache of regenerated worlds, keyed by their config. A
#: long-lived worker process serving studies with many distinct configs
#: (e.g. a test session, or a benchmark sweeping scales) used to pin
#: every world it ever built; a small LRU bound keeps the handful of
#: live configs warm while letting abandoned worlds be collected.
#: Eviction is bit-invisible: worlds regenerate from their config.
_WORLD_CACHE: BoundedLRU = BoundedLRU(maxsize=4)

WorldRef = Union[World, WorldConfig]


def resolve_world(ref: WorldRef) -> World:
    """Materialize a world reference inside a worker.

    Thread shards receive the :class:`World` itself (shared, read-mostly:
    site generation is deterministic, so racing generations of the same
    rank produce equal values). Process shards receive the
    :class:`WorldConfig` and regenerate the world once per process.
    """
    if isinstance(ref, World):
        return ref
    world = _WORLD_CACHE.get(ref)
    if world is None:
        # First materialization in this process (a spawn-started worker
        # arrives with every memoization cache cold): compile the
        # process-global PSL now, so its one-time rule-compile cost
        # lands in worker setup rather than inside the first shard's
        # crawl timing.
        from repro.net.psl import default_psl

        default_psl()
        world = World(ref)
        # Benign race: worlds are a deterministic function of their
        # config, so thread workers racing here store equal values.
        _WORLD_CACHE[ref] = world  # repro-lint: disable=RACE001
    return world


def world_ref_for_backend(world: World, backend: str) -> WorldRef:
    """The cheapest world handle that can cross the backend's boundary.

    For the process backend the world is also registered in the resolver
    cache: with a fork-based start method the child processes inherit
    the parent's (lazily warmed) world via copy-on-write instead of
    regenerating their own.
    """
    if backend == "process":
        _WORLD_CACHE.setdefault(world.config, world)
        return world.config
    return world


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
# Wall-duration measurement only: the values feed ShardStats/benchmark
# reporting, never a crawl decision or a deterministic artifact.
# A WorkerCrash is returned instead of raised so the timing of the
# partial execution survives and the caller can resume the slot.
def _timed_call(
    fn: Callable[[T], R], payload: T
) -> Tuple[Union[R, WorkerCrash], float]:
    start = time.perf_counter()  # repro-lint: disable=DET002
    try:
        result: Union[R, WorkerCrash] = fn(payload)
    except WorkerCrash as crash:
        result = crash
    return result, time.perf_counter() - start  # repro-lint: disable=DET002


#: Builds the payload that resumes a crashed shard from its checkpoint.
ResumeFn = Callable[[T, WorkerCrash], T]


class CrawlExecutor:
    """Runs shard functions on the configured worker pool.

    The executor is generic over the shard payload: the social platform
    submits day-range shards, the toplist crawler domain-range shards.
    Shard functions must be module-level callables and payloads/results
    picklable so the ``process`` backend can ship them.

    Shard functions may die mid-shard by raising
    :class:`~repro.faults.inject.WorkerCrash` (chaos schedules do this
    deterministically). When the caller provides a *resume* builder, the
    executor re-submits the crashed slot with a payload resumed from the
    crash's checkpoint -- completed work is never recomputed, and because
    every crawl is order-independent the resumed shard's results are
    bit-identical to an uninterrupted run. Without a resume builder a
    crash propagates like any other worker error.
    """

    def __init__(self, config: Optional[ExecutorConfig] = None):
        self.config = config or ExecutorConfig()

    def map_shards(
        self,
        fn: Callable[[T], R],
        payloads: Sequence[T],
        resume: Optional[ResumeFn] = None,
        max_resumes: int = MAX_RESUMES,
    ) -> Tuple[List[R], List[float], float, List[int]]:
        """Run *fn* over *payloads*; returns (results, per-shard seconds,
        total wall seconds, per-shard resume counts), in payload order."""
        # Duration stats only, not crawl-visible state.
        start = time.perf_counter()  # repro-lint: disable=DET002
        if not payloads:
            return [], [], 0.0, []
        n = len(payloads)
        slots: List[T] = list(payloads)
        results: List[R] = [None] * n  # type: ignore[list-item]
        seconds = [0.0] * n
        resumes = [0] * n
        if n == 1 or not self.config.parallel:
            for i in range(n):
                while True:
                    outcome, secs = _timed_call(fn, slots[i])
                    seconds[i] += secs
                    if not isinstance(outcome, WorkerCrash):
                        results[i] = outcome
                        break
                    slots[i] = self._resumed(
                        slots[i], outcome, resume, resumes[i], max_resumes
                    )
                    resumes[i] += 1
        else:
            pool_cls = (
                ThreadPoolExecutor
                if self.config.backend == "thread"
                else ProcessPoolExecutor
            )
            workers = min(self.config.workers, n)
            with pool_cls(max_workers=workers) as pool:
                futures = [
                    pool.submit(_timed_call, fn, p) for p in slots
                ]
                pending = set(range(n))
                while pending:
                    for i in sorted(pending):
                        outcome, secs = futures[i].result()
                        seconds[i] += secs
                        if isinstance(outcome, WorkerCrash):
                            slots[i] = self._resumed(
                                slots[i], outcome, resume,
                                resumes[i], max_resumes,
                            )
                            resumes[i] += 1
                            futures[i] = pool.submit(
                                _timed_call, fn, slots[i]
                            )
                        else:
                            results[i] = outcome
                            pending.discard(i)
        wall = time.perf_counter() - start  # repro-lint: disable=DET002
        return results, seconds, wall, resumes

    @staticmethod
    def _resumed(
        payload: T,
        crash: WorkerCrash,
        resume: Optional[ResumeFn],
        resumes_so_far: int,
        max_resumes: int,
    ) -> T:
        """The payload that continues *payload* past *crash*."""
        if resume is None:
            raise crash
        if resumes_so_far >= max_resumes:
            raise RuntimeError(
                f"shard {crash.shard_id} crashed {resumes_so_far + 1} "
                f"times; giving up after {max_resumes} resumes"
            ) from crash
        return resume(payload, crash)
