"""Persistence for capture stores.

The real platform keeps 161M captures in a central database queried via
a custom API (Section 3.2). For a library, the equivalent is a compact
on-disk format: observations are serialized as JSON Lines -- one record
per capture with the fields the longitudinal analyses consume -- so a
multi-hour crawl can be run once and re-analyzed many times.
"""

from __future__ import annotations

import datetime as dt
import io
import json
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.crawler.capture import Observation, Vantage
from repro.crawler.platform import CaptureStore

PathLike = Union[str, Path]


class StorageError(ValueError):
    """Raised on malformed observation files."""


def observation_to_record(obs: Observation) -> dict:
    """One observation as a JSON-serializable dict."""
    return {
        "domain": obs.domain,
        "date": obs.date.isoformat(),
        "cmp": obs.cmp_key,
        "region": obs.vantage.region,
        "address_space": obs.vantage.address_space,
    }


def observation_from_record(record: dict) -> Observation:
    try:
        return Observation(
            domain=record["domain"],
            date=dt.date.fromisoformat(record["date"]),
            cmp_key=record["cmp"],
            vantage=Vantage(
                region=record["region"],
                address_space=record["address_space"],
            ),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise StorageError(f"malformed observation record: {exc}") from exc


def dump_observations(
    observations: Iterable[Observation], destination: Union[PathLike, IO[str]]
) -> int:
    """Write observations as JSON Lines; returns the record count."""
    close = False
    if isinstance(destination, (str, Path)):
        handle: IO[str] = open(destination, "w", encoding="utf-8")
        close = True
    else:
        handle = destination
    count = 0
    try:
        for obs in observations:
            handle.write(json.dumps(observation_to_record(obs)))
            handle.write("\n")
            count += 1
    finally:
        if close:
            handle.close()
    return count


def load_observations(
    source: Union[PathLike, IO[str]]
) -> Iterator[Observation]:
    """Stream observations back from a JSON Lines file."""
    close = False
    if isinstance(source, (str, Path)):
        handle: IO[str] = open(source, "r", encoding="utf-8")
        close = True
    else:
        handle = source
    try:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise StorageError(
                    f"invalid JSON on line {line_no}: {exc}"
                ) from exc
            yield observation_from_record(record)
    finally:
        if close:
            handle.close()


def save_store(store: CaptureStore, path: PathLike) -> int:
    """Persist a capture store's observations to *path*."""
    return dump_observations(store.observations, path)


def load_store(path: PathLike) -> CaptureStore:
    """Rebuild a (observation-only) capture store from *path*.

    Full captures are not persisted -- like the real platform, which
    stores no page contents "due to storage constraints".
    """
    store = CaptureStore(retain_captures=False)
    for obs in load_observations(path):
        store.add_observation(obs)
        store.n_captures += 1
    return store


def dumps_observations(observations: Iterable[Observation]) -> str:
    """Serialize to an in-memory JSONL string."""
    buffer = io.StringIO()
    dump_observations(observations, buffer)
    return buffer.getvalue()


def loads_observations(text: str) -> Iterator[Observation]:
    """Deserialize from an in-memory JSONL string."""
    return load_observations(io.StringIO(text))
