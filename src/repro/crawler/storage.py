"""Persistence for capture stores.

The real platform keeps 161M captures in a central database queried via
a custom API (Section 3.2). For a library, the equivalent is a compact
on-disk format: observations are serialized as JSON Lines -- one record
per capture with the fields the longitudinal analyses consume -- so a
multi-hour crawl can be run once and re-analyzed many times.

Two properties matter for trustworthy accounting:

* **Crash safety.** Files are written via :func:`repro.ioutil.atomic_write`
  (temp file + ``os.replace``), so a writer killed mid-run can never
  leave a truncated-but-parseable JSONL behind -- readers see either the
  old complete file or the new complete file.
* **Exact round-trips.** ``save_store`` prepends a metadata header
  recording the store's counters (``n_captures`` includes failed
  captures, which observation counting alone would understate) and the
  expected observation count, so ``load_store`` restores failure-rate
  accounting exactly and detects externally truncated files. Headerless
  files from older versions still load, with counters derived the
  legacy way.
"""

from __future__ import annotations

import datetime as dt
import hashlib
import io
import json
from pathlib import Path
from typing import IO, Dict, Iterable, Iterator, Optional, Tuple, Union

from repro.crawler.capture import Observation, Vantage
from repro.crawler.columnar import CaptureStore
from repro.ioutil import atomic_write

PathLike = Union[str, Path]

#: Identifies a metadata header record (first line of a store file).
STORE_FORMAT = "repro.capture-store"
#: Bump when the on-disk schema changes incompatibly.
STORE_VERSION = 2


class StorageError(ValueError):
    """Raised on malformed observation files."""


def observation_to_record(obs: Observation) -> dict:
    """One observation as a JSON-serializable dict."""
    return {
        "domain": obs.domain,
        "date": obs.date.isoformat(),
        "cmp": obs.cmp_key,
        "region": obs.vantage.region,
        "address_space": obs.vantage.address_space,
    }


def observation_from_record(record: dict) -> Observation:
    try:
        return Observation(
            domain=record["domain"],
            date=dt.date.fromisoformat(record["date"]),
            cmp_key=record["cmp"],
            vantage=Vantage(
                region=record["region"],
                address_space=record["address_space"],
            ),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise StorageError(f"malformed observation record: {exc}") from exc


def store_header(store: CaptureStore) -> dict:
    """The metadata record persisted as the first line of a store file."""
    return {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "n_captures": store.n_captures,
        "total_requests": store.total_requests,
        "n_observations": len(store.observations),
    }


def is_store_header(record: dict) -> bool:
    return isinstance(record, dict) and record.get("format") == STORE_FORMAT


def store_digest(store: CaptureStore) -> str:
    """Content digest (hex SHA-256) of a store's persisted identity.

    Covers exactly what :func:`save_store` writes -- the counter header
    and every observation record in order -- so two stores share a
    digest iff their on-disk serializations are byte-identical. This is
    how derived-analysis cache fingerprints (:mod:`repro.cache`) name
    the store they were computed from without trusting file paths.
    """
    hasher = hashlib.sha256()
    hasher.update(json.dumps(store_header(store), sort_keys=True).encode())
    # Hash the interned tables and raw id columns instead of
    # re-serializing every row: the columnar encoding is canonical
    # (see CaptureStore.digest_parts), so digest equality is unchanged
    # while the cost drops from one json.dumps per observation to a few
    # memory-speed hash updates per store.
    for chunk in store.digest_parts():
        hasher.update(b"\n")
        hasher.update(chunk)
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# Record-level helpers (shared by the observation and store loaders)
# ----------------------------------------------------------------------
def _source_label(source: Union[PathLike, IO[str]]) -> str:
    if isinstance(source, (str, Path)):
        return str(source)
    name = getattr(source, "name", None)
    return name if isinstance(name, str) else "<stream>"


def _iter_records(
    handle: IO[str], label: str
) -> Iterator[Tuple[int, dict]]:
    """Yield ``(line_no, parsed_record)``, labeling parse errors with the
    source filename so multi-file loads stay debuggable."""
    for line_no, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            yield line_no, json.loads(line)
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"{label}: invalid JSON on line {line_no}: {exc}"
            ) from exc


def _observation_at(record: dict, label: str, line_no: int) -> Observation:
    try:
        return observation_from_record(record)
    except StorageError as exc:
        raise StorageError(f"{label}: line {line_no}: {exc}") from exc


def dump_observations(
    observations: Iterable[Observation], destination: Union[PathLike, IO[str]]
) -> int:
    """Write observations as JSON Lines; returns the record count.

    Path destinations are written atomically: the data lands in a
    temporary sibling file that replaces *destination* only once every
    record has been flushed, so a crash mid-write leaves any previous
    file intact instead of a silently truncated one.
    """
    if isinstance(destination, (str, Path)):
        with atomic_write(destination) as handle:
            return _write_observations(observations, handle)
    return _write_observations(observations, destination)


def _write_observations(
    observations: Iterable[Observation], handle: IO[str]
) -> int:
    count = 0
    for obs in observations:
        handle.write(json.dumps(observation_to_record(obs)))
        handle.write("\n")
        count += 1
    return count


def load_observations(
    source: Union[PathLike, IO[str]]
) -> Iterator[Observation]:
    """Stream observations back from a JSON Lines file.

    A store metadata header on the first line is skipped, so plain
    observation files and full store files both load.
    """
    label = _source_label(source)
    close = False
    if isinstance(source, (str, Path)):
        handle: IO[str] = open(source, "r", encoding="utf-8")
        close = True
    else:
        handle = source
    try:
        first = True
        for line_no, record in _iter_records(handle, label):
            if first:
                first = False
                if is_store_header(record):
                    continue
            yield _observation_at(record, label, line_no)
    finally:
        if close:
            handle.close()


def save_store(store: CaptureStore, path: PathLike) -> int:
    """Persist a capture store to *path*; returns the observation count.

    Atomic (crash-safe) and exact: a metadata header preserves the
    capture/request counters so failed-capture accounting survives the
    round-trip.
    """
    with atomic_write(path) as handle:
        handle.write(json.dumps(store_header(store), sort_keys=True))
        handle.write("\n")
        count = _write_observations(store.observations, handle)
    return count


def load_store(
    path: PathLike, *, context: Optional[str] = None
) -> CaptureStore:
    """Rebuild a (observation-only) capture store from *path*.

    Full captures are not persisted -- like the real platform, which
    stores no page contents "due to storage constraints". With a
    metadata header the original counters are restored verbatim and the
    observation count is checked against the header's promise (catching
    truncated copies); headerless legacy files fall back to counting one
    capture per observation.

    *context* prefixes every error message -- pass the work unit being
    restored (e.g. ``"shard 3"``) so a corrupt file in a multi-file
    resume names both the unit and the file, not just one of them.
    """
    label = f"{context}: {path}" if context else str(path)
    store = CaptureStore(retain_captures=False)
    header: Optional[dict] = None
    first = True
    with open(path, "r", encoding="utf-8") as handle:
        records = _iter_records(handle, label)
        for line_no, record in records:
            # Header detection looks at the first record only; probing
            # ``store.observations`` per line (as an earlier version
            # did) materializes the object view each time and turns the
            # load quadratic.
            if first:
                first = False
                if is_store_header(record):
                    header = _validated_header(record, label)
                    continue
            store.add_observation(_observation_at(record, label, line_no))
            store.n_captures += 1
    if header is not None:
        expected = header.get("n_observations")
        if isinstance(expected, int) and expected != store.n_rows:
            raise StorageError(
                f"{label}: truncated store: header promises {expected} "
                f"observations, found {store.n_rows}"
            )
        n_captures = header.get("n_captures")
        if isinstance(n_captures, int):
            store.n_captures = n_captures
        total_requests = header.get("total_requests")
        if isinstance(total_requests, int):
            store.total_requests = total_requests
    return store


def _validated_header(record: dict, label: str) -> dict:
    version = record.get("version")
    if not isinstance(version, int) or version > STORE_VERSION:
        raise StorageError(
            f"{label}: unsupported store format version {version!r} "
            f"(this build reads <= {STORE_VERSION})"
        )
    return record


# ----------------------------------------------------------------------
# Shard checkpoints (crash/resume persistence for chaos runs)
# ----------------------------------------------------------------------
def shard_checkpoint_path(directory: PathLike, shard_id: int) -> Path:
    """Where shard *shard_id*'s checkpoint store lives under *directory*."""
    return Path(directory) / f"shard-{shard_id:04d}.jsonl"


def save_shard_checkpoint(
    store: CaptureStore, directory: PathLike, shard_id: int
) -> Path:
    """Persist a shard's partial store as its checkpoint file (atomic)."""
    path = shard_checkpoint_path(directory, shard_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    save_store(store, path)
    return path


def load_shard_checkpoint(directory: PathLike, shard_id: int) -> CaptureStore:
    """Restore one shard's checkpoint store.

    Errors name both the shard and the file: a resume reads many
    checkpoint files, and "invalid JSON on line 7" alone does not say
    which shard's progress is lost.
    """
    path = shard_checkpoint_path(directory, shard_id)
    return load_store(path, context=f"shard {shard_id}")


def resume_from_checkpoints(directory: PathLike) -> Dict[int, CaptureStore]:
    """Load every shard checkpoint under *directory*, keyed by shard id.

    The scan is sorted so resume order (and any error encountered) is
    deterministic across filesystems.
    """
    stores: Dict[int, CaptureStore] = {}
    for path in sorted(Path(directory).glob("shard-*.jsonl")):
        stem = path.stem[len("shard-"):]
        try:
            shard_id = int(stem)
        except ValueError:
            raise StorageError(
                f"{path}: not a shard checkpoint (expected "
                f"shard-<number>.jsonl)"
            ) from None
        stores[shard_id] = load_store(path, context=f"shard {shard_id}")
    return stores


def dumps_observations(observations: Iterable[Observation]) -> str:
    """Serialize to an in-memory JSONL string."""
    buffer = io.StringIO()
    dump_observations(observations, buffer)
    return buffer.getvalue()


def loads_observations(text: str) -> Iterator[Observation]:
    """Deserialize from an in-memory JSONL string."""
    return load_observations(io.StringIO(text))
