"""Columnar (struct-of-arrays) capture storage.

The platform's hot path used to append one ``Observation`` dataclass --
four object fields, a ``Vantage``, a ``datetime.date`` -- per crawl, and
shard workers pickled lists of them back to the parent. At paper scale
(161M crawls) that is O(objects) everywhere. This module stores the same
data as parallel integer columns plus small interning tables:

* **domains** are interned in first-appearance order (the id table *is*
  the ``by_domain`` key order of the old store);
* **vantages** come from a fixed six-entry table (2 regions x 3 address
  spaces), so a vantage is one byte;
* **CMP keys** are interned with id 0 reserved for "no CMP";
* **dates** are stored as proleptic-Gregorian ordinals
  (``datetime.date.toordinal``).

Segments merge by concatenation: :meth:`CaptureStore.merge` extends each
column with the other store's column, remapping interned ids through a
per-merge translation table. Row order is preserved exactly -- merging
shard stores in shard order reproduces the serial insertion order, which
is the argument that keeps sharded runs bit-identical to serial ones
(docs/ARCHITECTURE.md, "Columnar capture store").

Row objects (:class:`~repro.crawler.capture.Observation`, and full
:class:`~repro.crawler.capture.Capture` lists in ``retain_captures``
mode) are materialized lazily and cached; the analysis layers keep their
object-based API while the crawl loop only ever touches arrays.
"""

from __future__ import annotations

import datetime as dt
import json
import sys
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crawler.capture import Capture, Observation, Vantage

#: The fixed vantage id table: ``id = region_id * 3 + space_id``.
VANTAGE_TABLE: Tuple[Vantage, ...] = tuple(
    Vantage(region=region, address_space=space)
    for region in ("EU", "US")
    for space in ("cloud", "university", "residential")
)
VANTAGE_IDS: Dict[Vantage, int] = {v: i for i, v in enumerate(VANTAGE_TABLE)}
#: ``str(vantage)`` per id (fault schedules key on the string form).
VANTAGE_STRS: Tuple[str, ...] = tuple(str(v) for v in VANTAGE_TABLE)


def vantage_id(region: str, address_space: str) -> int:
    """The table id of ``Vantage(region, address_space)``."""
    return VANTAGE_IDS[Vantage(region=region, address_space=address_space)]


class CaptureColumns:
    """Full captures as parallel columns (``retain_captures`` mode only).

    Scalars live in ``array`` columns (status uses -1 as the ``None``
    sentinel; timed_out/dialog_shown/blocked_by_antibot pack into one
    flags byte); reference-typed fields (URLs, timestamps, transaction
    tuples, ...) stay as per-column Python lists. ``from_captures`` ->
    ``to_captures`` is an exact identity (pinned by tests).
    """

    __slots__ = (
        "capture_id", "status", "vantage", "flags", "fault",
        "seed_url", "final_url", "captured_at", "transactions",
        "cookies", "storage_records", "screenshot", "page_text",
        "dom_dialog",
    )

    _TIMED_OUT = 1
    _DIALOG_SHOWN = 2
    _BLOCKED = 4

    def __init__(self) -> None:
        self.capture_id = array("q")
        self.status = array("i")
        self.vantage = array("b")
        self.flags = array("b")
        self.fault: List[Optional[str]] = []
        self.seed_url: List[object] = []
        self.final_url: List[object] = []
        self.captured_at: List[dt.datetime] = []
        self.transactions: List[tuple] = []
        self.cookies: List[tuple] = []
        self.storage_records: List[tuple] = []
        self.screenshot: List[object] = []
        self.page_text: List[str] = []
        self.dom_dialog: List[object] = []

    def __len__(self) -> int:
        return len(self.capture_id)

    def append(self, c: Capture) -> None:
        self.capture_id.append(c.capture_id)
        self.status.append(-1 if c.status is None else c.status)
        self.vantage.append(VANTAGE_IDS[c.vantage])
        self.flags.append(
            (self._TIMED_OUT if c.timed_out else 0)
            | (self._DIALOG_SHOWN if c.dialog_shown else 0)
            | (self._BLOCKED if c.blocked_by_antibot else 0)
        )
        self.fault.append(c.fault)
        self.seed_url.append(c.seed_url)
        self.final_url.append(c.final_url)
        self.captured_at.append(c.captured_at)
        self.transactions.append(c.transactions)
        self.cookies.append(c.cookies)
        self.storage_records.append(c.storage_records)
        self.screenshot.append(c.screenshot)
        self.page_text.append(c.page_text)
        self.dom_dialog.append(c.dom_dialog)

    def extend(self, other: "CaptureColumns") -> None:
        """Concatenate *other*'s rows after this segment's (no remap:
        every column is either absolute or a fixed-table id)."""
        self.capture_id.extend(other.capture_id)
        self.status.extend(other.status)
        self.vantage.extend(other.vantage)
        self.flags.extend(other.flags)
        self.fault.extend(other.fault)
        self.seed_url.extend(other.seed_url)
        self.final_url.extend(other.final_url)
        self.captured_at.extend(other.captured_at)
        self.transactions.extend(other.transactions)
        self.cookies.extend(other.cookies)
        self.storage_records.extend(other.storage_records)
        self.screenshot.extend(other.screenshot)
        self.page_text.extend(other.page_text)
        self.dom_dialog.extend(other.dom_dialog)

    def get(self, i: int) -> Capture:
        status = self.status[i]
        flags = self.flags[i]
        return Capture(
            capture_id=self.capture_id[i],
            seed_url=self.seed_url[i],
            final_url=self.final_url[i],
            captured_at=self.captured_at[i],
            vantage=VANTAGE_TABLE[self.vantage[i]],
            status=None if status < 0 else status,
            transactions=self.transactions[i],
            cookies=self.cookies[i],
            storage_records=self.storage_records[i],
            screenshot=self.screenshot[i],
            page_text=self.page_text[i],
            timed_out=bool(flags & self._TIMED_OUT),
            dom_dialog=self.dom_dialog[i],
            dialog_shown=bool(flags & self._DIALOG_SHOWN),
            blocked_by_antibot=bool(flags & self._BLOCKED),
            fault=self.fault[i],
        )

    def to_captures(self) -> List[Capture]:
        return [self.get(i) for i in range(len(self))]


class CaptureStore:
    """The platform's queryable capture database, stored columnarly.

    The public query API (``observations``, ``captures``, ``by_domain``,
    ``unique_domains``, ``observations_for``, ``domains_with_cmp``) is
    unchanged from the row-based store; the object views are lazy,
    cached, and invalidated by writes. Dicts handed out by
    :meth:`by_domain` are snapshots -- later writes build a fresh dict
    instead of mutating one a caller may still hold.
    """

    def __init__(self, retain_captures: bool = False):
        self.retain_captures = retain_captures
        self.total_requests = 0
        self.n_captures = 0
        # Interning tables.
        self._domains: List[str] = []
        self._domain_ids: Dict[str, int] = {}
        self._cmp_keys: List[Optional[str]] = [None]
        self._cmp_ids: Dict[Optional[str], int] = {None: 0}
        # Observation columns.
        self._col_domain = array("i")
        self._col_date = array("i")  # date ordinals
        self._col_cmp = array("b")
        self._col_vantage = array("b")
        # Full-capture columns (retain mode only).
        self._capture_cols = CaptureColumns() if retain_captures else None
        # Lazy object views.
        self._obs_cache: Optional[List[Observation]] = None
        self._captures_cache: Optional[List[Capture]] = None
        self._snapshot: Optional[Dict[str, List[Observation]]] = None

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def _domain_id(self, domain: str) -> int:
        i = self._domain_ids.get(domain)
        if i is None:
            i = len(self._domains)
            self._domain_ids[domain] = i
            self._domains.append(domain)
        return i

    def _cmp_id(self, cmp_key: Optional[str]) -> int:
        i = self._cmp_ids.get(cmp_key)
        if i is None:
            i = len(self._cmp_keys)
            self._cmp_ids[cmp_key] = i
            self._cmp_keys.append(cmp_key)
        return i

    def _invalidate(self) -> None:
        self._obs_cache = None
        self._snapshot = None
        self._captures_cache = None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append_row(
        self,
        domain: str,
        date_ordinal: int,
        cmp_key: Optional[str],
        vantage_id: int,
        n_requests: int,
    ) -> None:
        """The columnar hot-path write: one crawl, no objects."""
        self._col_domain.append(self._domain_id(domain))
        self._col_date.append(date_ordinal)
        self._col_cmp.append(self._cmp_id(cmp_key))
        self._col_vantage.append(vantage_id)
        self.total_requests += n_requests
        self.n_captures += 1
        self._invalidate()

    def append_batch(
        self,
        domains: Sequence[str],
        date_ordinals: Sequence[int],
        cmp_keys: Sequence[Optional[str]],
        vantage_ids: Sequence[int],
        n_requests: Sequence[int],
    ) -> None:
        """:meth:`append_row` for a whole day batch.

        Row order is the argument order, identical to calling
        ``append_row`` per element; the columns are extended with one
        C-level call each and the object caches are invalidated once.
        """
        domain_id = self._domain_id
        cmp_id = self._cmp_id
        self._col_domain.extend([domain_id(d) for d in domains])
        self._col_date.extend(date_ordinals)
        self._col_cmp.extend([cmp_id(k) for k in cmp_keys])
        self._col_vantage.extend(vantage_ids)
        self.total_requests += sum(n_requests)
        self.n_captures += len(domains)
        self._invalidate()

    def add(self, capture: Capture, cmp_key: Optional[str]) -> Observation:
        """Append one full capture (the row-path write)."""
        obs = capture.to_observation(cmp_key)
        self.add_observation(obs)
        self.total_requests += capture.n_requests
        self.n_captures += 1
        if self._capture_cols is not None:
            self._capture_cols.append(capture)
        return obs

    def add_observation(self, obs: Observation) -> Observation:
        """Append a pre-compacted observation."""
        self._col_domain.append(self._domain_id(obs.domain))
        self._col_date.append(obs.date.toordinal())
        self._col_cmp.append(self._cmp_id(obs.cmp_key))
        self._col_vantage.append(VANTAGE_IDS[obs.vantage])
        self._invalidate()
        return obs

    def merge(self, other: "CaptureStore") -> None:
        """Fold *other* (e.g. a shard segment) into this store.

        Pure concatenation: this store's rows first, then *other*'s in
        their original order, with *other*'s interned ids remapped
        through a translation table built once per merge. Merging shard
        segments in shard order therefore reproduces the serial
        insertion order exactly.
        """
        dom_map = [self._domain_id(d) for d in other._domains]
        if dom_map == list(range(len(dom_map))):
            # Identity remap (e.g. merging into an empty store):
            # straight memcpy-style extend.
            self._col_domain.extend(other._col_domain)
        else:
            self._col_domain.extend(dom_map[i] for i in other._col_domain)
        cmp_map = [self._cmp_id(k) for k in other._cmp_keys]
        if cmp_map == list(range(len(cmp_map))):
            self._col_cmp.extend(other._col_cmp)
        else:
            self._col_cmp.extend(cmp_map[i] for i in other._col_cmp)
        self._col_date.extend(other._col_date)
        self._col_vantage.extend(other._col_vantage)
        self.total_requests += other.total_requests
        self.n_captures += other.n_captures
        if self._capture_cols is not None and other._capture_cols is not None:
            self._capture_cols.extend(other._capture_cols)
        self._invalidate()

    def digest_parts(self) -> Iterable[bytes]:
        """Canonical byte chunks fully determining the persisted rows.

        The interning tables are first-appearance ordered under both
        serial appends and :meth:`merge` (the translation table walks
        the segment's table, which is itself first-appearance ordered),
        so ``(tables, id columns)`` is a *canonical* encoding: two
        stores yield equal chunks iff their serialized observation rows
        are identical. :func:`repro.crawler.storage.store_digest` hashes
        these instead of re-serializing every row. Integer columns are
        normalized to little-endian so digests are architecture-stable.
        """
        yield json.dumps(self._domains).encode("utf-8")
        yield json.dumps(self._cmp_keys).encode("utf-8")
        for col in (
            self._col_domain, self._col_date, self._col_cmp,
            self._col_vantage,
        ):
            if sys.byteorder != "little":  # pragma: no cover - x86/arm LE
                col = array(col.typecode, col)
                col.byteswap()
            yield col.tobytes()

    # ------------------------------------------------------------------
    # Object views (lazy, cached)
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self._col_domain)

    @property
    def observations(self) -> List[Observation]:
        """All observations in insertion order (materialized lazily)."""
        if self._obs_cache is None:
            dates: Dict[int, dt.date] = {}
            domains = self._domains
            cmps = self._cmp_keys
            from_ordinal = dt.date.fromordinal
            out: List[Observation] = []
            for d, o, c, v in zip(
                self._col_domain, self._col_date, self._col_cmp,
                self._col_vantage,
            ):
                date = dates.get(o)
                if date is None:
                    date = dates[o] = from_ordinal(o)
                out.append(
                    Observation(domains[d], date, cmps[c], VANTAGE_TABLE[v])
                )
            self._obs_cache = out
        return self._obs_cache

    @property
    def captures(self) -> List[Capture]:
        """Full captures (``retain_captures`` mode; else always empty)."""
        if self._capture_cols is None:
            return []
        if self._captures_cache is None:
            self._captures_cache = self._capture_cols.to_captures()
        return self._captures_cache

    def iter_rows(
        self,
    ) -> Iterable[Tuple[str, int, Optional[str], int]]:
        """Raw rows as ``(domain, date_ordinal, cmp_key, vantage_id)``
        without materializing Observation objects (serialization path)."""
        domains = self._domains
        cmps = self._cmp_keys
        return (
            (domains[d], o, cmps[c], v)
            for d, o, c, v in zip(
                self._col_domain, self._col_date, self._col_cmp,
                self._col_vantage,
            )
        )

    def rows_since(
        self, cursor: int
    ) -> List[Tuple[str, int, Optional[str], int]]:
        """Decoded rows appended at index >= *cursor*, in insertion order.

        The streaming engine's ingestion tail: after each per-day crawl
        it drains ``rows_since(previous n_rows)`` into its incremental
        accumulators and advances the cursor, so each row is decoded
        exactly once over the life of a follow run. Rows come back as
        ``(domain, date_ordinal, cmp_key, vantage_id)`` --
        :meth:`iter_rows` restricted to the suffix.
        """
        if cursor < 0:
            raise ValueError("cursor must be >= 0")
        domains = self._domains
        cmps = self._cmp_keys
        return [
            (domains[d], o, cmps[c], v)
            for d, o, c, v in zip(
                self._col_domain[cursor:],
                self._col_date[cursor:],
                self._col_cmp[cursor:],
                self._col_vantage[cursor:],
            )
        ]

    def domain_day_rows(self) -> Dict[str, List[Tuple[int, Optional[str]]]]:
        """Per-domain ``(date_ordinal, cmp_key)`` pairs, no objects.

        The adoption estimator's whole input: grouping runs on interned
        domain ids, so each row costs one dict probe and one tuple
        instead of an ``Observation``. Domains appear in first-capture
        order (the same order :meth:`by_domain` yields) and each
        domain's rows keep insertion order, which is what makes
        :meth:`repro.core.adoption.AdoptionSeries.from_columnar`
        bit-identical to the object path: the per-day state vote and
        its ``Counter`` tie-breaking see captures in the same sequence.
        """
        by_id: Dict[int, List[Tuple[int, Optional[str]]]] = {}
        cmps = self._cmp_keys
        for d, o, c in zip(
            self._col_domain, self._col_date, self._col_cmp
        ):
            row = (o, cmps[c])
            bucket = by_id.get(d)
            if bucket is None:
                by_id[d] = [row]
            else:
                bucket.append(row)
        domains = self._domains
        return {domains[d]: rows for d, rows in by_id.items()}

    # ------------------------------------------------------------------
    # Query API (the stand-in for Netograph's custom API)
    # ------------------------------------------------------------------
    def by_domain(self) -> Dict[str, List[Observation]]:
        """Observations grouped by domain, sorted by date (cached)."""
        if self._snapshot is None:
            buckets: Dict[str, List[Observation]] = {}
            for obs in self.observations:
                bucket = buckets.get(obs.domain)
                if bucket is None:
                    buckets[obs.domain] = [obs]
                else:
                    bucket.append(obs)
            for bucket in buckets.values():
                bucket.sort(key=lambda o: o.date)
            self._snapshot = buckets
        return self._snapshot

    @property
    def unique_domains(self) -> int:
        return len(self._domains)

    def observations_for(self, domain: str) -> List[Observation]:
        return self.by_domain().get(domain, [])

    def domains_with_cmp(self) -> Tuple[str, ...]:
        with_cmp = set()
        for d, c in zip(self._col_domain, self._col_cmp):
            if c:
                with_cmp.add(d)
        return tuple(
            domain
            for i, domain in enumerate(self._domains)
            if i in with_cmp
        )

    # ------------------------------------------------------------------
    # Round-trip constructors (tests, tooling)
    # ------------------------------------------------------------------
    @classmethod
    def from_captures(
        cls,
        captures: Sequence[Capture],
        cmp_keys: Optional[Sequence[Optional[str]]] = None,
    ) -> "CaptureStore":
        """A retain-mode store holding *captures* columnarly."""
        store = cls(retain_captures=True)
        if cmp_keys is None:
            cmp_keys = [None] * len(captures)
        for capture, cmp_key in zip(captures, cmp_keys):
            store.add(capture, cmp_key)
        return store

    def to_captures(self) -> List[Capture]:
        """The stored captures as row objects (retain mode)."""
        return list(self.captures)

    # ------------------------------------------------------------------
    # Pickling (shard results travel between processes)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Cached object views are derived data; never ship them.
        state["_obs_cache"] = None
        state["_snapshot"] = None
        state["_captures_cache"] = None
        return state
