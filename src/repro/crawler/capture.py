"""The capture schema.

A :class:`Capture` records everything Netograph stores for one browser
visit (Section 3.2): HTTP headers for all requests and responses,
connection metadata, cookies and client-side storage, a viewport
screenshot descriptor, and -- for toplist crawls only -- the DOM tree
(here: the structured dialog descriptor) and a full-page screenshot.

Because the longitudinal analyses only need ``(domain, date, cmp)``
triples, a capture can be compacted into an :class:`Observation`, the
unit the adoption/switching analyses operate on.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Tuple

from repro.cmps.base import DialogDescriptor
from repro.net.http import Cookie, HttpTransaction
from repro.net.psl import default_psl
from repro.net.url import URL


@dataclass(frozen=True)
class Vantage:
    """Where a crawl was performed from."""

    region: str  # "EU" | "US"
    address_space: str  # "cloud" | "university" | "residential"

    def __post_init__(self) -> None:
        if self.region not in ("EU", "US"):
            raise ValueError(f"unknown region {self.region!r}")
        if self.address_space not in ("cloud", "university", "residential"):
            raise ValueError(f"unknown address space {self.address_space!r}")

    def __str__(self) -> str:
        return f"{self.region}-{self.address_space}"


EU_CLOUD = Vantage("EU", "cloud")
US_CLOUD = Vantage("US", "cloud")
EU_UNIVERSITY = Vantage("EU", "university")


@dataclass(frozen=True)
class ScreenshotInfo:
    """Descriptor of a stored screenshot (contents are not modelled)."""

    width: int = 1024
    height: int = 800
    full_page: bool = False


@dataclass(frozen=True)
class Capture:
    """One completed browser crawl."""

    capture_id: int
    seed_url: URL
    final_url: URL
    captured_at: dt.datetime
    vantage: Vantage
    #: Final document status; ``None`` when no response was received.
    status: Optional[int]
    transactions: Tuple[HttpTransaction, ...] = ()
    cookies: Tuple[Cookie, ...] = ()
    #: LocalStorage/SessionStorage/IndexedDB/WebSQL entries present when
    #: the crawl ended (Section 3.2).
    storage_records: Tuple = ()
    screenshot: ScreenshotInfo = field(default_factory=ScreenshotInfo)
    #: Visible page text (used by the GDPR phrase scan).
    page_text: str = ""
    #: The crawl was cut short by the aggressive timeout.
    timed_out: bool = False
    #: DOM-derived dialog descriptor; only stored for toplist crawls
    #: ("these extended features are not stored for the social media
    #: dataset due to their storage requirements", Section 3.2).
    dom_dialog: Optional[DialogDescriptor] = None
    dialog_shown: bool = False
    blocked_by_antibot: bool = False
    #: Kind of the injected fault that produced this capture, if any
    #: (see :mod:`repro.faults`). ``None`` for every organic capture,
    #: so fault-free runs are bit-identical with the module wired in.
    fault: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.status is not None and 200 <= self.status < 400

    @cached_property
    def final_domain(self) -> str:
        """Effective second-level domain of the final address-bar URL.

        This is the paper's unit of counting: the domain is taken from
        the final website address (not the seed URL, which would be
        imprecise due to redirects) and normalized via the Public Suffix
        List (Section 3.2).

        Cached per capture: adoption, marketshare and vantage derivation
        all read it repeatedly, and the PSL lookup is not free. (The
        cache lives in the instance ``__dict__``, which the frozen
        dataclass permits because the write bypasses ``__setattr__``;
        equality and hashing only consider declared fields.)
        """
        host = self.final_url.host
        reg = default_psl().registrable_domain(host)
        return reg if reg is not None else host

    @property
    def contacted_hosts(self) -> Tuple[str, ...]:
        return tuple(tx.request.url.host for tx in self.transactions)

    @property
    def n_requests(self) -> int:
        return len(self.transactions)

    def to_observation(self, cmp_key: Optional[str]) -> "Observation":
        """Compact this capture into an observation for the longitudinal
        analyses, given the CMP-detection result."""
        return Observation(
            domain=self.final_domain,
            date=self.captured_at.date(),
            cmp_key=cmp_key,
            vantage=self.vantage,
        )


@dataclass(frozen=True, order=True)
class Observation:
    """The compact unit of the longitudinal analyses."""

    domain: str
    date: dt.date
    cmp_key: Optional[str]
    vantage: Vantage = field(compare=False, default=EU_CLOUD)
