"""The social-media URL seed stream.

Netograph "ingests a live feed of social media posts, extracts all URLs,
and submits them into a capture queue" -- all URLs shared on Reddit plus
1% of public tweets, with Twitter accounting for 80% of all URLs
(Section 3.4). Popular URLs are re-shared and retweeted, so the sample
skews heavily towards popular sites; unlike toplist crawls, the seeds
point at arbitrary subsites, not just landing pages.

:class:`SocialShareStream` reproduces those properties over the synthetic
web: Zipf-skewed site selection, subsite paths, occasional shortener
indirection, and a Twitter/Reddit platform mix. Event generation is
deterministic per day, so analyses can re-derive any slice of the stream
without storing it.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.net.url import URL
from repro.web.serving import make_short_link
from repro.web.worldgen import World


@dataclass(frozen=True)
class StreamConfig:
    """Parameters of the seed stream."""

    seed: int = 11
    #: URL submissions per simulated day (scaled down ~1000x from the
    #: real platform's volume; proportions are what matters).
    events_per_day: int = 1500
    #: Share of URLs originating from Twitter (the rest is Reddit).
    twitter_share: float = 0.80
    #: Probability that a shared URL goes through a URL shortener.
    shortener_prob: float = 0.06
    #: Probability that a share points at the landing page rather than a
    #: subsite.
    landing_page_prob: float = 0.35
    #: Zipf exponent of the share-frequency distribution.
    zipf_exponent: float = 0.85

    def __post_init__(self) -> None:
        if self.events_per_day < 1:
            raise ValueError("need at least one event per day")
        if not 0.0 <= self.twitter_share <= 1.0:
            raise ValueError("twitter_share must be a fraction")


@dataclass(frozen=True)
class ShareEvent:
    """One URL spotted in the social feeds."""

    at: dt.datetime
    url: URL
    platform: str  # "twitter" | "reddit"


class SocialShareStream:
    """Deterministic per-day generator of share events."""

    def __init__(self, world: World, config: Optional[StreamConfig] = None):
        self.world = world
        self.config = config or StreamConfig()
        n = world.config.n_domains
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** -self.config.zipf_exponent
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        #: ``(rank, subsite index, shortened)`` -> the shared URL
        #: instance. Zipf-skewed shares repeat the popular sites
        #: constantly; sharing one instance per target keeps the URL's
        #: internal string/hash/key memos warm across events (and the
        #: cache size bounded by the distinct targets actually shared).
        #: Lives on the world so it survives the stream (platform runs
        #: build a fresh stream per run over a long-lived world).
        self._url_cache: dict = world._share_url_cache

    # ------------------------------------------------------------------
    def events_for_day(self, day: dt.date) -> List[ShareEvent]:
        """All share events of one simulated day, chronological."""
        return list(self.iter_day_events(day))

    def iter_day_events(self, day: dt.date) -> Iterator[ShareEvent]:
        """One day's share events, generated lazily in stream order.

        All randomness of a day is drawn up front as one uniform matrix
        (one row per candidate event, one column per decision) from the
        day-keyed numpy generator; the Python loop then only routes the
        precomputed values. That keeps the stream deterministic per day
        while avoiding ~6 stdlib RNG calls per event, which dominated
        the generator's cost before the crawl path was columnarized.
        Yielding instead of appending lets shard workers select their
        accepted events without ever holding a full day list
        (:meth:`~repro.crawler.platform.SocialShardSpec.iter_day_chunks`);
        the emitted order -- including the skip of zero-weight sites --
        is identical to the list the eager wrapper returns.
        """
        config = self.config
        np_rng = np.random.default_rng(
            (config.seed * 1_000_003 + day.toordinal()) % (2**63)
        )
        n = config.events_per_day
        u = np_rng.random((n, 5))
        ranks = np.searchsorted(self._cdf, u[:, 0], side="left") + 1
        seconds = np.sort(np_rng.integers(0, 86_400, size=n))
        u_index = u[:, 1].tolist()
        # Exponential deviates for the subsite choice, from column 2.
        depth = (-np.log1p(-u[:, 2])).tolist()
        u_short = u[:, 3].tolist()
        u_platform = u[:, 4].tolist()

        landing_prob = config.landing_page_prob
        privacy_cut = landing_prob + 0.01 * (1.0 - landing_prob)
        shortener_prob = config.shortener_prob
        twitter_share = config.twitter_share
        world = self.world
        site_at = world.site
        url_cache = self._url_cache
        year, month, dday = day.year, day.month, day.day
        datetime_ = dt.datetime

        for i, (rank, sec) in enumerate(
            zip(ranks.tolist(), seconds.tolist())
        ):
            site = site_at(rank)
            if site.share_weight <= 0.0:
                # Infrastructure / dead / alias domains never get shared.
                continue
            # One uniform decides landing page vs privacy policy vs
            # article: [0, p) -> landing, [p, p') -> privacy policy
            # (1% of the remainder), else an article whose depth comes
            # from the precomputed exponential deviate.
            ui = u_index[i]
            if ui < landing_prob:
                index = 0
            elif ui < privacy_cut:
                index = site.privacy_policy_index
            else:
                index = 1 + min(
                    int(depth[i] * site.n_subsites / 3),
                    site.n_subsites - 1,
                )
            shortened = u_short[i] < shortener_prob
            url = url_cache.get((rank, index, shortened))
            if url is None:
                if shortened:
                    url = make_short_link(world, site, index)
                else:
                    # Direct construction: domains and subsite paths
                    # are generated canonical, so parsing would be a
                    # no-op.
                    url = URL(
                        scheme=(
                            "http" if site.reachability != "https"
                            else "https"
                        ),
                        host=site.domain,
                        path=site.subsite_path(index),
                    )
                url_cache[(rank, index, shortened)] = url
            h, rem = divmod(sec, 3600)
            m, s = divmod(rem, 60)
            yield ShareEvent(
                at=datetime_(year, month, dday, h, m, s),
                url=url,
                platform=(
                    "twitter"
                    if u_platform[i] < twitter_share
                    else "reddit"
                ),
            )

    def iter_events(
        self, start: dt.date, end: dt.date
    ) -> Iterator[ShareEvent]:
        """Events for every day in ``[start, end)``, one day resident
        at a time (the days stream through :meth:`iter_day_events`
        instead of materializing each full day list)."""
        day = start
        while day < end:
            yield from self.iter_day_events(day)
            day += dt.timedelta(days=1)

