"""The social-media URL seed stream.

Netograph "ingests a live feed of social media posts, extracts all URLs,
and submits them into a capture queue" -- all URLs shared on Reddit plus
1% of public tweets, with Twitter accounting for 80% of all URLs
(Section 3.4). Popular URLs are re-shared and retweeted, so the sample
skews heavily towards popular sites; unlike toplist crawls, the seeds
point at arbitrary subsites, not just landing pages.

:class:`SocialShareStream` reproduces those properties over the synthetic
web: Zipf-skewed site selection, subsite paths, occasional shortener
indirection, and a Twitter/Reddit platform mix. Event generation is
deterministic per day, so analyses can re-derive any slice of the stream
without storing it.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.net.url import URL
from repro.web.serving import make_short_link
from repro.web.worldgen import World


@dataclass(frozen=True)
class StreamConfig:
    """Parameters of the seed stream."""

    seed: int = 11
    #: URL submissions per simulated day (scaled down ~1000x from the
    #: real platform's volume; proportions are what matters).
    events_per_day: int = 1500
    #: Share of URLs originating from Twitter (the rest is Reddit).
    twitter_share: float = 0.80
    #: Probability that a shared URL goes through a URL shortener.
    shortener_prob: float = 0.06
    #: Probability that a share points at the landing page rather than a
    #: subsite.
    landing_page_prob: float = 0.35
    #: Zipf exponent of the share-frequency distribution.
    zipf_exponent: float = 0.85

    def __post_init__(self) -> None:
        if self.events_per_day < 1:
            raise ValueError("need at least one event per day")
        if not 0.0 <= self.twitter_share <= 1.0:
            raise ValueError("twitter_share must be a fraction")


@dataclass(frozen=True)
class ShareEvent:
    """One URL spotted in the social feeds."""

    at: dt.datetime
    url: URL
    platform: str  # "twitter" | "reddit"


class SocialShareStream:
    """Deterministic per-day generator of share events."""

    def __init__(self, world: World, config: Optional[StreamConfig] = None):
        self.world = world
        self.config = config or StreamConfig()
        n = world.config.n_domains
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** -self.config.zipf_exponent
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    # ------------------------------------------------------------------
    def events_for_day(self, day: dt.date) -> List[ShareEvent]:
        """All share events of one simulated day, chronological."""
        rng = random.Random(f"{self.config.seed}:day:{day.toordinal()}")
        np_rng = np.random.default_rng(
            (self.config.seed * 1_000_003 + day.toordinal()) % (2**63)
        )
        n = self.config.events_per_day
        ranks = (
            np.searchsorted(self._cdf, np_rng.random(n), side="left") + 1
        )
        seconds = np.sort(np_rng.integers(0, 86_400, size=n))
        events: List[ShareEvent] = []
        for rank, sec in zip(ranks.tolist(), seconds.tolist()):
            site = self.world.site(int(rank))
            if site.share_weight <= 0.0:
                # Infrastructure / dead / alias domains never get shared.
                continue
            url = self._share_url(rng, site)
            events.append(
                ShareEvent(
                    at=dt.datetime.combine(day, dt.time())
                    + dt.timedelta(seconds=int(sec)),
                    url=url,
                    platform=(
                        "twitter"
                        if rng.random() < self.config.twitter_share
                        else "reddit"
                    ),
                )
            )
        return events

    def iter_events(
        self, start: dt.date, end: dt.date
    ) -> Iterator[ShareEvent]:
        """Events for every day in ``[start, end)``."""
        day = start
        while day < end:
            yield from self.events_for_day(day)
            day += dt.timedelta(days=1)

    # ------------------------------------------------------------------
    def _share_url(self, rng: random.Random, site) -> URL:
        if rng.random() < self.config.landing_page_prob:
            index = 0
        elif rng.random() < 0.01:
            index = site.privacy_policy_index
        else:
            index = 1 + min(
                int(rng.expovariate(1.0) * site.n_subsites / 3),
                site.n_subsites - 1,
            )
        if rng.random() < self.config.shortener_prob:
            return make_short_link(self.world, site, index)
        scheme = "http" if site.reachability != "https" else "https"
        return URL.parse(f"{scheme}://{site.domain}{site.subsite_path(index)}")
