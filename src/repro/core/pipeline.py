"""High-level study facade.

Bundles the full measurement stack -- world, Tranco list, social-media
platform, toplist crawler and the analyses -- behind one object, so
examples and benchmark harnesses can reproduce a paper figure in a few
lines. Everything stays deterministic via the study seed.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (stream -> pipeline)
    from repro.stream import StreamingStudyEngine

from repro.cache import (
    ArtifactCache,
    Fingerprint,
    digest_domains,
    resolve_cache,
)
from repro.core.adoption import AdoptionSeries, month_starts
from repro.core.marketshare import MarketShareCurve, marketshare_by_toplist_size
from repro.core.switching import SwitchingFlows
from repro.core.vantage import VantageTable
from repro.crawler.executor import CrawlExecutor, ExecutorConfig
from repro.crawler.platform import (
    CaptureStore,
    NetographPlatform,
    PlatformConfig,
)
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.crawler.spill import SpillSettings
from repro.crawler.storage import store_digest
from repro.crawler.toplist_crawl import (
    CONFIG_NAMES,
    ToplistCrawler,
    ToplistCrawlResult,
)
from repro.faults import FaultSchedule, RetryPolicy
from repro.obs import Observability, resolve_obs
from repro.toplist.tranco import TrancoList, build_tranco
from repro.web.worldgen import World, WorldConfig


@dataclass(frozen=True)
class StudyConfig:
    """Scale knobs of a reproduction run.

    The defaults are sized for interactive use (a world of 20k domains
    and a 1k toplist run in seconds); the benchmark harnesses scale them
    up towards the paper's dimensions.
    """

    seed: int = 7
    n_domains: int = 20_000
    toplist_size: int = 1_000
    events_per_day: int = 400
    study_start: dt.date = dt.date(2018, 3, 1)
    study_end: dt.date = dt.date(2020, 9, 30)
    #: Crawl-phase worker count; 1 keeps the plain serial loops.
    parallelism: int = 1
    #: Worker-pool backend for ``parallelism > 1``: "thread" | "process".
    backend: str = "thread"
    #: Chaos schedule injected into every crawl phase; ``None`` keeps
    #: runs bit-identical to a build without :mod:`repro.faults`.
    faults: Optional[FaultSchedule] = None
    #: Backoff policy for retrying injected transient faults.
    retry: Optional[RetryPolicy] = None
    #: Artifact-cache directory (:mod:`repro.cache`); ``None`` disables
    #: caching. Not part of any fingerprint -- moving the cache, like
    #: changing ``parallelism``/``backend``, cannot change results.
    cache_dir: Optional[str] = None
    #: Streaming-engine checkpoint cadence in ingested days (``study
    #: --follow``); 0 checkpoints only on request. An execution knob
    #: like ``parallelism``: never part of a fingerprint, cannot change
    #: results.
    checkpoint_every_days: int = 0
    #: Crawl-phase memory budget in resident capture rows: stores spill
    #: full segments to disk past this bound (:mod:`repro.crawler.spill`)
    #: and peak RSS stops scaling with the study size. ``None`` keeps
    #: every row in memory. An execution knob like ``parallelism``:
    #: never part of a fingerprint, cannot change results (spilling is
    #: bit-invisible; digest equality is pinned by ``tests/test_scale.py``).
    memory_budget: Optional[int] = None


class Study:
    """One fully wired reproduction study."""

    def __init__(
        self,
        config: Optional[StudyConfig] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config or StudyConfig()
        #: Observability sink threaded through crawls (defaults to the
        #: no-op backend; results are bit-identical either way).
        self.obs = resolve_obs(obs)
        #: Persistent artifact cache (``None`` when ``cache_dir`` unset).
        #: Hits are bit-identical to cold computes by construction; see
        #: :mod:`repro.cache` for the invalidation model.
        self.cache: Optional[ArtifactCache] = resolve_cache(
            self.config.cache_dir, self.obs
        )
        #: ``PlatformStats`` of the most recent ``run_social_crawl``.
        self.last_crawl_stats = None
        self.world = World(
            WorldConfig(
                seed=self.config.seed,
                n_domains=self.config.n_domains,
                study_start=self.config.study_start,
                study_end=self.config.study_end,
            )
        )

    # ------------------------------------------------------------------
    @cached_property
    def executor(self) -> Optional[CrawlExecutor]:
        """The crawl executor implied by the parallelism knobs, if any."""
        if self.config.parallelism <= 1:
            return None
        return CrawlExecutor(
            ExecutorConfig(
                workers=self.config.parallelism,
                backend=self.config.backend,
            )
        )

    @cached_property
    def tranco(self) -> TrancoList:
        return build_tranco(self.world)

    # ------------------------------------------------------------------
    # Cache fingerprints
    # ------------------------------------------------------------------
    def fingerprint(
        self, stage: str, key: Sequence[str] = (), **fields: object
    ) -> Fingerprint:
        """The cache fingerprint of one *stage* artifact of this study.

        Digests every result-affecting study knob: the scale/seed
        fields, the study window, the fault-schedule digest and the
        retry policy. ``parallelism``, ``backend`` and ``cache_dir``
        are deliberately absent -- the determinism contract guarantees
        results are bit-identical across them, so a cache entry written
        by a 16-worker process run serves a serial rerun.
        """
        cfg = self.config
        return Fingerprint.build(
            stage,
            key=tuple(key),
            seed=cfg.seed,
            n_domains=cfg.n_domains,
            toplist_size=cfg.toplist_size,
            events_per_day=cfg.events_per_day,
            study_start=cfg.study_start.isoformat(),
            study_end=cfg.study_end.isoformat(),
            faults=cfg.faults.digest() if cfg.faults is not None else "none",
            retry=repr(cfg.retry) if cfg.retry is not None else "none",
            **fields,
        )

    @cached_property
    def toplist_domains(self) -> List[str]:
        return self.tranco.top(self.config.toplist_size)

    # ------------------------------------------------------------------
    # Crawling
    # ------------------------------------------------------------------
    def run_social_crawl(
        self,
        start: Optional[dt.date] = None,
        end: Optional[dt.date] = None,
        *,
        retain_captures: bool = False,
    ) -> CaptureStore:
        """Run the social-media platform over a window (default: the
        whole study period)."""
        platform = NetographPlatform(
            self.world,
            stream=SocialShareStream(
                self.world,
                StreamConfig(
                    seed=self.config.seed + 1,
                    events_per_day=self.config.events_per_day,
                ),
            ),
            config=PlatformConfig(
                seed=self.config.seed + 2,
                retain_captures=retain_captures,
                faults=self.config.faults,
                retry=self.config.retry,
                spill=(
                    SpillSettings(row_budget=self.config.memory_budget)
                    if self.config.memory_budget
                    else None
                ),
            ),
            obs=self.obs,
        )
        self.last_crawl_stats = platform.stats
        start = start or self.config.study_start
        end = end or self.config.study_end
        fingerprint = None
        if self.cache is not None:
            fingerprint = self.fingerprint(
                "social-crawl",
                key=(start.isoformat(), end.isoformat()),
            )
        return platform.run(
            start,
            end,
            executor=self.executor,
            cache=self.cache,
            fingerprint=fingerprint,
        )

    def streaming_engine(
        self, *, resume: bool = False, **kwargs
    ) -> "StreamingStudyEngine":
        """An incremental follow engine for this study (`study --follow`).

        The engine consumes the share stream day by day and keeps the
        adoption/marketshare/vantage results current at its watermark;
        caught up to day N it is byte-identical to a batch run over days
        0..N (see :mod:`repro.stream`). ``resume=True`` restores the
        newest checkpoint from the study cache instead of starting cold.
        ``checkpoint_every_days`` from the config is the default cadence;
        *kwargs* forward to :class:`StreamingStudyEngine`.
        """
        from repro.stream import StreamingStudyEngine

        kwargs.setdefault(
            "checkpoint_every", self.config.checkpoint_every_days
        )
        if resume:
            return StreamingStudyEngine.from_checkpoint(self, **kwargs)
        return StreamingStudyEngine(self, **kwargs)

    def run_toplist_crawl(
        self,
        when: dt.date,
        configs: Sequence[str] = CONFIG_NAMES,
        size: Optional[int] = None,
    ) -> ToplistCrawlResult:
        domains = (
            self.toplist_domains
            if size is None
            else self.tranco.top(size)
        )
        crawler = ToplistCrawler(
            self.world,
            obs=self.obs,
            faults=self.config.faults,
            retry=self.config.retry,
        )
        probe_fingerprint = None
        if self.cache is not None:
            probe_fingerprint = self.fingerprint(
                "toplist-probes",
                key=(f"top{len(domains)}",),
                domains=digest_domains(domains),
                retries=crawler.retries,
            )
        return crawler.run(
            domains,
            when,
            configs,
            executor=self.executor,
            cache=self.cache,
            probe_fingerprint=probe_fingerprint,
        )

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def adoption_series(
        self,
        store: CaptureStore,
        restrict_to_toplist: bool = True,
    ) -> AdoptionSeries:
        restrict = set(self.toplist_domains) if restrict_to_toplist else None
        fingerprint = None
        if self.cache is not None:
            # Content-addressed on the input store: the digest covers
            # exactly what save_store persists, so any upstream change
            # (window, faults, code) flows through automatically.
            fingerprint = self.fingerprint(
                "adoption",
                key=("toplist" if restrict_to_toplist else "all",),
                store=store_digest(store),
                restrict=(
                    digest_domains(self.toplist_domains)
                    if restrict_to_toplist
                    else "none"
                ),
            )
            payload = self.cache.load_payload(fingerprint)
            if payload is not None:
                return AdoptionSeries.from_payload(payload)
        # Columnar path: identical output to from_store(store.by_domain())
        # without materializing one Observation per capture first.
        series = AdoptionSeries.from_columnar(store, restrict)
        if fingerprint is not None:
            self.cache.save_payload(fingerprint, series.to_payload())
        return series

    def monthly_dates(self) -> List[dt.date]:
        return month_starts(self.config.study_start, self.config.study_end)

    def marketshare_curve(
        self, date: dt.date, **kwargs
    ) -> MarketShareCurve:
        fingerprint = None
        if self.cache is not None:
            fingerprint = self.fingerprint(
                "marketshare",
                key=(date.isoformat(),),
                params=repr(sorted(kwargs.items())),
            )
            payload = self.cache.load_payload(fingerprint)
            if payload is not None:
                return MarketShareCurve.from_payload(payload)
        curve = marketshare_by_toplist_size(
            self.world, self.tranco, date, **kwargs
        )
        if fingerprint is not None:
            self.cache.save_payload(fingerprint, curve.to_payload())
        return curve

    def switching_flows(self, series: AdoptionSeries) -> SwitchingFlows:
        return SwitchingFlows.from_timelines(series.timelines)

    def build_graph(
        self,
        store: Optional[CaptureStore] = None,
        *,
        gvl_versions: Optional[Sequence] = None,
        ranking_depth: Optional[int] = None,
    ):
        """The consent ecosystem graph of this study (:mod:`repro.graph`).

        Unifies the capture store (``CAPTURED``/``OBSERVES`` edges), the
        Tranco ranking and its worldgen ground truth (``RANK``/
        ``ADOPTED``), CrUX-shaped per-country lists and, when given, a
        GVL version history, behind one query surface. Cached under the
        ``graph-build`` stage, content-addressed on the store and GVL
        digests plus the ranking depth -- the graph's own canonical
        digest guarantees a cache hit is bit-identical to a rebuild.
        """
        from repro.graph import (
            ConsentGraph,
            build_study_graph,
            gvl_history_digest,
        )
        from repro.toplist.providers import per_country_toplists

        depth = (
            self.config.toplist_size
            if ranking_depth is None
            else min(ranking_depth, len(self.tranco))
        )
        fingerprint = None
        if self.cache is not None:
            fingerprint = self.fingerprint(
                "graph-build",
                key=(f"depth{depth}",),
                store=store_digest(store) if store is not None else "none",
                gvl=(
                    gvl_history_digest(gvl_versions)
                    if gvl_versions is not None
                    else "none"
                ),
            )
            payload = self.cache.load_payload(fingerprint)
            if payload is not None:
                return ConsentGraph.from_payload(payload)
        with self.obs.span("graph.build", depth=depth) as span:
            graph = build_study_graph(
                store=store,
                world=self.world,
                tranco=self.tranco,
                ranking_depth=depth,
                country_toplists=per_country_toplists(
                    self.world, self.tranco, max_rank=depth
                ),
                gvl_versions=gvl_versions,
            )
            span.set(nodes=graph.n_nodes, edges=graph.n_edges)
        if fingerprint is not None:
            self.cache.save_payload(fingerprint, graph.to_payload())
        return graph

    def vantage_table(self, when: dt.date, size: Optional[int] = None) -> VantageTable:
        """Table 1 for date *when*; a cache hit skips the toplist crawl
        (all six configurations) entirely."""
        fingerprint = None
        if self.cache is not None:
            fingerprint = self.fingerprint(
                "vantage",
                key=(when.isoformat(), f"top{size or self.config.toplist_size}"),
                configs=",".join(CONFIG_NAMES),
            )
            payload = self.cache.load_payload(fingerprint)
            if payload is not None:
                return VantageTable.from_payload(payload)
        table = VantageTable.from_crawl(self.run_toplist_crawl(when, size=size))
        if fingerprint is not None:
            self.cache.save_payload(fingerprint, table.to_payload())
        return table
