"""High-level study facade.

Bundles the full measurement stack -- world, Tranco list, social-media
platform, toplist crawler and the analyses -- behind one object, so
examples and benchmark harnesses can reproduce a paper figure in a few
lines. Everything stays deterministic via the study seed.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional, Sequence

from repro.core.adoption import AdoptionSeries, month_starts
from repro.core.marketshare import MarketShareCurve, marketshare_by_toplist_size
from repro.core.switching import SwitchingFlows
from repro.core.vantage import VantageTable
from repro.crawler.executor import CrawlExecutor, ExecutorConfig
from repro.crawler.platform import (
    CaptureStore,
    NetographPlatform,
    PlatformConfig,
)
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.crawler.toplist_crawl import (
    CONFIG_NAMES,
    ToplistCrawler,
    ToplistCrawlResult,
)
from repro.faults import FaultSchedule, RetryPolicy
from repro.obs import Observability, resolve_obs
from repro.toplist.tranco import TrancoList, build_tranco
from repro.web.worldgen import World, WorldConfig


@dataclass(frozen=True)
class StudyConfig:
    """Scale knobs of a reproduction run.

    The defaults are sized for interactive use (a world of 20k domains
    and a 1k toplist run in seconds); the benchmark harnesses scale them
    up towards the paper's dimensions.
    """

    seed: int = 7
    n_domains: int = 20_000
    toplist_size: int = 1_000
    events_per_day: int = 400
    study_start: dt.date = dt.date(2018, 3, 1)
    study_end: dt.date = dt.date(2020, 9, 30)
    #: Crawl-phase worker count; 1 keeps the plain serial loops.
    parallelism: int = 1
    #: Worker-pool backend for ``parallelism > 1``: "thread" | "process".
    backend: str = "thread"
    #: Chaos schedule injected into every crawl phase; ``None`` keeps
    #: runs bit-identical to a build without :mod:`repro.faults`.
    faults: Optional[FaultSchedule] = None
    #: Backoff policy for retrying injected transient faults.
    retry: Optional[RetryPolicy] = None


class Study:
    """One fully wired reproduction study."""

    def __init__(
        self,
        config: Optional[StudyConfig] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config or StudyConfig()
        #: Observability sink threaded through crawls (defaults to the
        #: no-op backend; results are bit-identical either way).
        self.obs = resolve_obs(obs)
        #: ``PlatformStats`` of the most recent ``run_social_crawl``.
        self.last_crawl_stats = None
        self.world = World(
            WorldConfig(
                seed=self.config.seed,
                n_domains=self.config.n_domains,
                study_start=self.config.study_start,
                study_end=self.config.study_end,
            )
        )

    # ------------------------------------------------------------------
    @cached_property
    def executor(self) -> Optional[CrawlExecutor]:
        """The crawl executor implied by the parallelism knobs, if any."""
        if self.config.parallelism <= 1:
            return None
        return CrawlExecutor(
            ExecutorConfig(
                workers=self.config.parallelism,
                backend=self.config.backend,
            )
        )

    @cached_property
    def tranco(self) -> TrancoList:
        return build_tranco(self.world)

    @cached_property
    def toplist_domains(self) -> List[str]:
        return self.tranco.top(self.config.toplist_size)

    # ------------------------------------------------------------------
    # Crawling
    # ------------------------------------------------------------------
    def run_social_crawl(
        self,
        start: Optional[dt.date] = None,
        end: Optional[dt.date] = None,
        *,
        retain_captures: bool = False,
    ) -> CaptureStore:
        """Run the social-media platform over a window (default: the
        whole study period)."""
        platform = NetographPlatform(
            self.world,
            stream=SocialShareStream(
                self.world,
                StreamConfig(
                    seed=self.config.seed + 1,
                    events_per_day=self.config.events_per_day,
                ),
            ),
            config=PlatformConfig(
                seed=self.config.seed + 2,
                retain_captures=retain_captures,
                faults=self.config.faults,
                retry=self.config.retry,
            ),
            obs=self.obs,
        )
        self.last_crawl_stats = platform.stats
        return platform.run(
            start or self.config.study_start,
            end or self.config.study_end,
            executor=self.executor,
        )

    def run_toplist_crawl(
        self,
        when: dt.date,
        configs: Sequence[str] = CONFIG_NAMES,
        size: Optional[int] = None,
    ) -> ToplistCrawlResult:
        domains = (
            self.toplist_domains
            if size is None
            else self.tranco.top(size)
        )
        return ToplistCrawler(
            self.world,
            obs=self.obs,
            faults=self.config.faults,
            retry=self.config.retry,
        ).run(domains, when, configs, executor=self.executor)

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def adoption_series(
        self,
        store: CaptureStore,
        restrict_to_toplist: bool = True,
    ) -> AdoptionSeries:
        restrict = set(self.toplist_domains) if restrict_to_toplist else None
        return AdoptionSeries.from_store(store.by_domain(), restrict)

    def monthly_dates(self) -> List[dt.date]:
        return month_starts(self.config.study_start, self.config.study_end)

    def marketshare_curve(
        self, date: dt.date, **kwargs
    ) -> MarketShareCurve:
        return marketshare_by_toplist_size(
            self.world, self.tranco, date, **kwargs
        )

    def switching_flows(self, series: AdoptionSeries) -> SwitchingFlows:
        return SwitchingFlows.from_timelines(series.timelines)

    def vantage_table(self, when: dt.date, size: Optional[int] = None) -> VantageTable:
        return VantageTable.from_crawl(self.run_toplist_crawl(when, size=size))
