"""One-command reproduction report.

Regenerates every table and figure of the paper from a single
:class:`~repro.core.pipeline.Study` and renders them into one Markdown
document -- the artefact a replication package would ship. Scale knobs
come from the study config; everything is deterministic for a seed.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import List, Optional

from repro.cmps.base import CMP_KEYS, cmp_by_key
from repro.core.compliance import audit_captures
from repro.core.concentration import hhi_series, jurisdiction_report
from repro.core.customization import classify_dialogs, dialogs_from_captures
from repro.core.gvl_analysis import GvlAnalysis
from repro.core.pipeline import Study
from repro.core.timing import OptOutStudy, TimingStudy
from repro.tcf.gvlgen import generate_gvl_history
from repro.users.experiment import run_quantcast_experiment

MAY_2020 = dt.date(2020, 5, 15)
JAN_2020 = dt.date(2020, 1, 15)


@dataclass
class ReportOptions:
    """Which (potentially slow) sections to include."""

    include_longitudinal: bool = True
    include_toplist: bool = True
    include_gvl: bool = True
    include_timing: bool = True
    longitudinal_start: Optional[dt.date] = None
    longitudinal_end: Optional[dt.date] = None


def generate_report(
    study: Study, options: Optional[ReportOptions] = None
) -> str:
    """Build the full Markdown reproduction report."""
    options = options or ReportOptions()
    lines: List[str] = [
        "# Consent-management reproduction report",
        "",
        f"*World seed {study.config.seed}, {study.config.n_domains:,} "
        f"domains, toplist size {study.config.toplist_size:,}.*",
        "",
    ]
    if options.include_toplist:
        lines += _section_vantage(study)
        lines += _section_marketshare(study)
        lines += _section_customization_compliance(study)
    if options.include_longitudinal:
        lines += _section_longitudinal(study, options)
    if options.include_gvl:
        lines += _section_gvl()
    if options.include_timing:
        lines += _section_timing()
    lines += _section_concentration(study)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
def _section_vantage(study: Study) -> List[str]:
    table = study.vantage_table(MAY_2020)
    return [
        "## Table 1 — CMP occurrence by vantage point (May 2020)",
        "",
        "```",
        table.format_table(),
        "```",
        "",
    ]


def _section_marketshare(study: Study) -> List[str]:
    curve = study.marketshare_curve(MAY_2020)
    lines = [
        "## Figure 5 — cumulative marketshare by toplist size",
        "",
        "| toplist size | total | leader |",
        "|---|---|---|",
    ]
    for size, total, per_cmp in curve.rows():
        leader = max(per_cmp, key=per_cmp.get) if any(per_cmp.values()) else "-"
        lines.append(f"| {size:,} | {total * 100:.2f}% | {leader} |")
    lines.append("")
    return lines


def _section_customization_compliance(study: Study) -> List[str]:
    crawl = study.run_toplist_crawl(MAY_2020, configs=("eu-univ-extended",))
    captures = crawl.captures_for("eu-univ-extended")
    customization = classify_dialogs(dialogs_from_captures(captures))
    audit = audit_captures(captures)
    lines = [
        "## Section 4.1 — publisher customization",
        "",
    ]
    for key in CMP_KEYS:
        if customization.n_sites(key) == 0:
            continue
        top = customization.categories[key].most_common(3)
        summary = ", ".join(
            f"{cat} {n / customization.n_sites(key) * 100:.0f}%"
            for cat, n in top
        )
        lines.append(
            f"* **{cmp_by_key(key).name}** (n={customization.n_sites(key)}): "
            f"{summary}"
        )
    lines += [
        "",
        "## Section 7 — compliance audit",
        "",
        f"{audit.sites_audited} dialogs audited, "
        f"{audit.sites_with_findings} with findings:",
        "",
    ]
    for code, count, rate in audit.rows():
        lines.append(f"* `{code}`: {count} ({rate * 100:.1f}% of sites)")
    lines.append("")
    return lines


def _section_longitudinal(study: Study, options: ReportOptions) -> List[str]:
    start = options.longitudinal_start or study.config.study_start
    end = options.longitudinal_end or study.config.study_end
    store = study.run_social_crawl(start, end)
    series = study.adoption_series(store, restrict_to_toplist=True)
    flows = study.switching_flows(series)
    lines = [
        "## Figure 6 — adoption over time",
        "",
        f"Pipeline: {store.n_captures:,} captures of "
        f"{store.unique_domains:,} domains.",
        "",
        "| month | CMP sites in toplist |",
        "|---|---|",
    ]
    for date in study.monthly_dates():
        if start <= date <= end:
            lines.append(f"| {date:%Y-%m} | {series.total_on(date)} |")
    lines += [
        "",
        "## Figure 4 — switching",
        "",
        "| CMP | gained | lost | net |",
        "|---|---|---|---|",
    ]
    for key, gained, lost, net in flows.rows():
        lines.append(
            f"| {cmp_by_key(key).name} | {gained} | {lost} | {net:+d} |"
        )
    lines.append("")
    return lines


def _section_gvl() -> List[str]:
    analysis = GvlAnalysis(generate_gvl_history())
    events = analysis.change_events()
    lines = [
        "## Figures 7/8 — Global Vendor List",
        "",
        f"* versions: {len(analysis.versions)}; vendors "
        f"{len(analysis.versions[0])} → {len(analysis.versions[-1])}",
        f"* most declared purpose: P{analysis.most_declared_purpose()}",
        f"* net LI→consent movement: {analysis.net_li_to_consent():+d} "
        f"({events['li-to-consent']} vs {events['consent-to-li']})",
        "",
    ]
    return lines


def _section_timing() -> List[str]:
    timing = TimingStudy(run_quantcast_experiment())
    optout = OptOutStudy.run()
    s = timing.summary()
    return [
        "## Figures 9/10 — time costs",
        "",
        f"* accept {s['direct/accept-median']:.1f}s vs reject "
        f"{s['direct/reject-median']:.1f}s (direct) / "
        f"{s['options/reject-median']:.1f}s (More Options)",
        f"* consent rate {s['direct/consent-rate'] * 100:.0f}% → "
        f"{s['options/consent-rate'] * 100:.0f}%",
        f"* TrustArc opt-out: {optout.median_duration:.0f}s, "
        f"{optout.median_clicks} clicks, "
        f"+{optout.median_extra_requests:.0f} requests to "
        f"{optout.median_partner_domains:.0f} domains",
        "",
    ]


def _section_concentration(study: Study) -> List[str]:
    jur = jurisdiction_report(
        study.world, MAY_2020, max_rank=study.config.toplist_size
    )
    hhi_values = hhi_series(
        study.world,
        [dt.date(2018, 7, 1), dt.date(2019, 7, 1), dt.date(2020, 7, 1)],
        max_rank=study.config.toplist_size,
    )
    return [
        "## Section 5.2 — market structure",
        "",
        f"* EU+UK TLD leader: {cmp_by_key(jur.eu_uk_leader).name}; "
        f"other: {cmp_by_key(jur.other_leader).name} "
        f"(distinct coalitions: {jur.distinct_coalitions})",
        "* HHI: "
        + ", ".join(f"{d.year}: {v:.3f}" for d, v in hhi_values),
        "",
    ]
