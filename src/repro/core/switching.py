"""Inter-CMP switching flows (Figure 4).

The longitudinal approach can detect when websites change CMPs: a
domain's interpolated timeline shows one CMP's stint ending and another
beginning. This module aggregates those events into the flow matrix
behind Figure 4, from which the paper reads the competitive dynamics --
Quantcast and OneTrust trade customers, while Cookiebot (the "gateway
CMP") loses an order of magnitude more websites than it gains.
"""

from __future__ import annotations

import datetime as dt
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.cmps.base import CMP_KEYS
from repro.core.adoption import DomainTimeline

#: Maximum gap between one CMP's disappearance and another's appearance
#: for the event to count as a switch rather than drop-plus-adopt.
SWITCH_GRACE_DAYS = 45


@dataclass
class SwitchingFlows:
    """The aggregated switch-flow matrix."""

    #: (from_cmp, to_cmp) -> number of domains.
    flows: Counter = field(default_factory=Counter)

    @classmethod
    def from_timelines(
        cls, timelines: Mapping[str, DomainTimeline]
    ) -> "SwitchingFlows":
        flows: Counter = Counter()
        for tl in timelines.values():
            for (a, _, a_end), (b, b_start, _) in zip(
                tl.cmp_stints, tl.cmp_stints[1:]
            ):
                if a == b:
                    continue
                if (b_start - a_end).days <= SWITCH_GRACE_DAYS:
                    flows[(a, b)] += 1
        return cls(flows=flows)

    # ------------------------------------------------------------------
    def gained(self, cmp_key: str) -> int:
        return sum(n for (_, to), n in self.flows.items() if to == cmp_key)

    def lost(self, cmp_key: str) -> int:
        return sum(n for (frm, _), n in self.flows.items() if frm == cmp_key)

    def net(self, cmp_key: str) -> int:
        return self.gained(cmp_key) - self.lost(cmp_key)

    def loss_ratio(self, cmp_key: str) -> float:
        """Lost-to-gained ratio; ``inf`` when nothing was gained.

        The paper's Cookiebot finding is a ratio of roughly an order of
        magnitude.
        """
        gained = self.gained(cmp_key)
        lost = self.lost(cmp_key)
        if gained == 0:
            return float("inf") if lost else 0.0
        return lost / gained

    @property
    def total_switches(self) -> int:
        return sum(self.flows.values())

    def rows(self) -> List[Tuple[str, int, int, int]]:
        """Per-CMP (key, gained, lost, net) rows, table order."""
        return [
            (key, self.gained(key), self.lost(key), self.net(key))
            for key in CMP_KEYS
        ]

    def matrix(self) -> Dict[str, Dict[str, int]]:
        """Nested ``{from: {to: count}}`` view of the flows."""
        out: Dict[str, Dict[str, int]] = {k: {} for k in CMP_KEYS}
        for (frm, to), n in self.flows.items():
            out.setdefault(frm, {})[to] = n
        return out
