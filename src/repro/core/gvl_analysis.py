"""Ad-tech vendor behaviour over the GVL history (I4/I5, Figures 7/8).

Figure 7: the number of vendors on the Global Vendor List and the number
declaring each purpose, over time -- growing throughout, with a sharp
spike as the GDPR came into effect, and purpose 1 always the most
popular.

Figure 8: the changes made by *existing* members -- joins/leaves aside --
classified into the six event kinds of Section 3.2. The headline result:
on net, more vendors move purposes from legitimate interest to consent
than the other way round.
"""

from __future__ import annotations

import datetime as dt
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tcf.gvl import GlobalVendorList, GvlDiff, diff_history
from repro.tcf.purposes import PURPOSE_IDS


@dataclass
class GvlAnalysis:
    """All longitudinal statistics over one GVL version history.

    Works over v1 histories by default; pass ``purpose_ids=tuple(range(1,
    11))`` to analyze TCF v2 lists (the analysis is duck-typed over both
    list models).
    """

    versions: List[GlobalVendorList]
    purpose_ids: Tuple[int, ...] = PURPOSE_IDS
    diffs: List[GvlDiff] = field(init=False)

    def __post_init__(self) -> None:
        if len(self.versions) < 2:
            raise ValueError("need at least two GVL versions")
        self.versions = sorted(self.versions, key=lambda v: v.version)
        self.diffs = diff_history(self.versions, self.purpose_ids)

    # ------------------------------------------------------------------
    # Figure 7
    # ------------------------------------------------------------------
    def vendor_count_series(self) -> List[Tuple[dt.date, int]]:
        """(date, number of vendors) for every version."""
        return [(v.last_updated, len(v)) for v in self.versions]

    def purpose_series(
        self, basis: str = "any"
    ) -> Dict[int, List[Tuple[dt.date, int]]]:
        """Per purpose: (date, vendors declaring it) for every version."""
        out: Dict[int, List[Tuple[dt.date, int]]] = {
            pid: [] for pid in self.purpose_ids
        }
        for version in self.versions:
            hist = version.purpose_histogram(basis)
            for pid in self.purpose_ids:
                out[pid].append((version.last_updated, hist[pid]))
        return out

    def most_declared_purpose(self) -> int:
        """The purpose declared by the most vendors, aggregated over the
        whole history (the paper: always purpose 1)."""
        totals: Counter = Counter()
        for version in self.versions:
            for pid, n in version.purpose_histogram("any").items():
                totals[pid] += n
        return totals.most_common(1)[0][0]

    def growth_between(self, start: dt.date, end: dt.date) -> int:
        """Vendor-count change between the versions closest to the two
        dates."""
        return len(self._closest(end)) - len(self._closest(start))

    def _closest(self, date: dt.date) -> GlobalVendorList:
        return min(
            self.versions,
            key=lambda v: abs((v.last_updated - date).days),
        )

    # ------------------------------------------------------------------
    # Figure 8
    # ------------------------------------------------------------------
    def change_events(self) -> Counter:
        """Total purpose-change events by kind over the whole history."""
        events: Counter = Counter()
        for diff in self.diffs:
            for change in diff.purpose_changes:
                events[change.kind] += 1
        return events

    def change_series(self) -> List[Tuple[dt.date, Counter]]:
        """(date, per-kind event counts) for every version transition."""
        out = []
        for diff in self.diffs:
            events: Counter = Counter()
            for change in diff.purpose_changes:
                events[change.kind] += 1
            out.append((diff.date, events))
        return out

    def net_li_to_consent(self) -> int:
        """Net LI->consent movement across the whole history; positive
        means vendors are on net obtaining more consent (the paper's
        surprising I5 finding)."""
        return sum(d.net_li_to_consent for d in self.diffs)

    def membership_series(self) -> List[Tuple[dt.date, int, int]]:
        """(date, joins, leaves) for every version transition."""
        return [(d.date, len(d.joined), len(d.left)) for d in self.diffs]

    # ------------------------------------------------------------------
    # Section 5.2: legitimate-interest prevalence
    # ------------------------------------------------------------------
    def li_share_by_purpose(
        self, date: Optional[dt.date] = None
    ) -> Dict[int, float]:
        """Per purpose: share of declaring vendors that claim legitimate
        interest rather than requesting consent.

        The paper: "For every purpose in the TCF, at least a fifth of
        the vendors claim they do not need to collect consent."
        """
        version = self.versions[-1] if date is None else self._closest(date)
        out: Dict[int, float] = {}
        li = version.purpose_histogram("legitimate-interest")
        declared = version.purpose_histogram("any")
        for pid in self.purpose_ids:
            out[pid] = li[pid] / declared[pid] if declared[pid] else 0.0
        return out

    def activity_peaks(self, top_n: int = 3) -> List[Tuple[dt.date, float]]:
        """The version transitions with the most purpose-change events
        per day (the paper sees peaks around the GDPR and in March/April
        2020).

        Normalized per day because the list's publishing cadence changed
        from every two days (2018) to weekly -- raw per-version counts
        would systematically understate the dense early period.
        """
        scored = []
        prev_date = self.versions[0].last_updated
        for diff in self.diffs:
            days = max(1, (diff.date - prev_date).days)
            scored.append((diff.date, len(diff.purpose_changes) / days))
            prev_date = diff.date
        return sorted(scored, key=lambda x: -x[1])[:top_n]
