"""Vantage-point comparison over the toplist crawls (Tables 1 and A.3).

Counts the occurrence of each CMP in the Tranco 10k as measured from
every crawl configuration, and the per-configuration coverage relative
to the best configuration. The paper's findings reproduced here:

* crawling from the EU sees significantly more CMPs than from the US
  (geo-gated embeds);
* public-cloud address space misses ~10% of CMP dialogs behind anti-bot
  CDNs;
* the aggressive default timeout misses ~2%;
* browser language has no significant effect.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cmps.base import CMP_KEYS, cmp_by_key
from repro.crawler.toplist_crawl import ToplistCrawlResult
from repro.detect.engine import detect_cmp


@dataclass
class VantageTable:
    """Table 1 / Table A.3: CMP occurrence per crawl configuration."""

    #: Config name -> cmp key -> number of domains.
    counts: Dict[str, Counter]
    #: Config name -> set of domains with any CMP.
    cmp_domains: Dict[str, frozenset]

    @classmethod
    def from_crawl(cls, result: ToplistCrawlResult) -> "VantageTable":
        counts: Dict[str, Counter] = {}
        cmp_domains: Dict[str, frozenset] = {}
        for config_name, captures in result.captures.items():
            per_cmp: Counter = Counter()
            detected = set()
            # Count by final domain so redirect targets are counted once.
            seen_domains: Dict[str, Optional[str]] = {}
            for capture in captures.values():
                key = detect_cmp(capture).cmp_key
                domain = capture.final_domain
                if key is not None:
                    seen_domains[domain] = key
                else:
                    seen_domains.setdefault(domain, None)
            for domain, key in seen_domains.items():
                if key is not None:
                    per_cmp[key] += 1
                    detected.add(domain)
            counts[config_name] = per_cmp
            cmp_domains[config_name] = frozenset(detected)
        return cls(counts=counts, cmp_domains=cmp_domains)

    @classmethod
    def from_stream_rows(
        cls, rows: Iterable[Tuple[str, str, Optional[str]]]
    ) -> "VantageTable":
        """Per-vantage CMP occurrence from social-stream capture rows.

        *rows* are ``(config_name, domain, cmp_key)`` in capture order
        -- for the social platform, the config name is the vantage
        string (``EU-cloud``/``US-cloud``). Same counting rule as
        :meth:`from_crawl`: per configuration a domain is counted once,
        under the CMP of its most recent CMP-positive capture. This is
        the batch counterpart of :class:`VantageAccumulator`; the
        streaming tests pin byte-identical payloads between the two.
        """
        accumulator = VantageAccumulator()
        for config_name, domain, cmp_key in rows:
            accumulator.add(config_name, domain, cmp_key)
        return accumulator.table()

    # ------------------------------------------------------------------
    # Cache serialization (repro.cache vantage artifacts)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serializable payload.

        Config and per-CMP counter insertion orders are preserved as
        ordered pair lists (``rows``/``format_table`` iterate them
        directly); ``cmp_domains`` sets are serialized sorted because
        frozenset iteration order is hash-randomized across processes.
        """
        return {
            "counts": [
                [name, [[k, n] for k, n in counter.items()]]
                for name, counter in self.counts.items()
            ],
            "cmp_domains": [
                [name, sorted(domains)]
                for name, domains in self.cmp_domains.items()
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "VantageTable":
        """Exact inverse of :meth:`to_payload`."""
        return cls(
            counts={
                name: Counter(dict(pairs))
                for name, pairs in payload["counts"]
            },
            cmp_domains={
                name: frozenset(domains)
                for name, domains in payload["cmp_domains"]
            },
        )

    # ------------------------------------------------------------------
    def total(self, config_name: str) -> int:
        return sum(self.counts[config_name].values())

    @property
    def best_config(self) -> str:
        """The configuration observing the most CMP domains."""
        return max(self.counts, key=self.total)

    def coverage(self, config_name: str) -> float:
        """Coverage relative to the best configuration (Table 1's last
        row)."""
        best = self.total(self.best_config)
        return self.total(config_name) / best if best else 1.0

    def count(self, config_name: str, cmp_key: str) -> int:
        return self.counts[config_name][cmp_key]

    def rows(self) -> List[Tuple[str, Dict[str, int], int, float]]:
        """Per-config (name, per-CMP counts, total, coverage) rows."""
        return [
            (
                name,
                {k: self.counts[name][k] for k in CMP_KEYS},
                self.total(name),
                self.coverage(name),
            )
            for name in self.counts
        ]

    def format_table(self) -> str:
        """Render the table in the paper's layout (CMPs as rows)."""
        configs = list(self.counts)
        widths = [max(10, len(c)) for c in configs]
        header = "CMP".ljust(12) + "  ".join(
            c.rjust(w) for c, w in zip(configs, widths)
        )
        lines = [header]
        for key in CMP_KEYS:
            name = cmp_by_key(key).name
            lines.append(
                name.ljust(12)
                + "  ".join(
                    str(self.counts[c][key]).rjust(w)
                    for c, w in zip(configs, widths)
                )
            )
        lines.append(
            "Total".ljust(12)
            + "  ".join(
                str(self.total(c)).rjust(w) for c, w in zip(configs, widths)
            )
        )
        lines.append(
            "Coverage".ljust(12)
            + "  ".join(
                f"{self.coverage(c) * 100:.0f}%".rjust(w)
                for c, w in zip(configs, widths)
            )
        )
        return "\n".join(lines)


class VantageAccumulator:
    """Incremental :class:`VantageTable` state (streaming path).

    Maintains, per crawl configuration, the ``domain -> last CMP-positive
    key`` map the batch :meth:`VantageTable.from_crawl` builds in one
    pass -- updated in O(1) per capture row as the stream arrives.
    Configurations and domains keep first-appearance order, so
    :meth:`table` serializes byte-identically to the batch constructors
    over the same rows.
    """

    def __init__(self) -> None:
        #: config -> domain -> last CMP-positive key (or None if the
        #: domain has only ever been seen CMP-less from that config).
        self._seen: Dict[str, Dict[str, Optional[str]]] = {}

    def add(
        self, config_name: str, domain: str, cmp_key: Optional[str]
    ) -> None:
        """Ingest one capture row (the streaming hot path)."""
        seen = self._seen.get(config_name)
        if seen is None:
            seen = self._seen[config_name] = {}
        if cmp_key is not None:
            seen[domain] = cmp_key
        elif domain not in seen:
            seen[domain] = None

    def table(self) -> VantageTable:
        """Materialize the table over every row ingested so far.

        The per-CMP counters are rebuilt from the maintained domain
        maps (O(domains seen), not O(rows)); building them here rather
        than online keeps counter insertion order identical to the
        batch path, which walks domains in first-appearance order.
        """
        counts: Dict[str, Counter] = {}
        cmp_domains: Dict[str, frozenset] = {}
        for config_name, seen in self._seen.items():
            per_cmp: Counter = Counter()
            detected = set()
            for domain, key in seen.items():
                if key is not None:
                    per_cmp[key] += 1
                    detected.add(domain)
            counts[config_name] = per_cmp
            cmp_domains[config_name] = frozenset(detected)
        return VantageTable(counts=counts, cmp_domains=cmp_domains)
