"""Vantage-point comparison over the toplist crawls (Tables 1 and A.3).

Counts the occurrence of each CMP in the Tranco 10k as measured from
every crawl configuration, and the per-configuration coverage relative
to the best configuration. The paper's findings reproduced here:

* crawling from the EU sees significantly more CMPs than from the US
  (geo-gated embeds);
* public-cloud address space misses ~10% of CMP dialogs behind anti-bot
  CDNs;
* the aggressive default timeout misses ~2%;
* browser language has no significant effect.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cmps.base import CMP_KEYS, cmp_by_key
from repro.crawler.toplist_crawl import ToplistCrawlResult
from repro.detect.engine import detect_cmp


@dataclass
class VantageTable:
    """Table 1 / Table A.3: CMP occurrence per crawl configuration."""

    #: Config name -> cmp key -> number of domains.
    counts: Dict[str, Counter]
    #: Config name -> set of domains with any CMP.
    cmp_domains: Dict[str, frozenset]

    @classmethod
    def from_crawl(cls, result: ToplistCrawlResult) -> "VantageTable":
        counts: Dict[str, Counter] = {}
        cmp_domains: Dict[str, frozenset] = {}
        for config_name, captures in result.captures.items():
            per_cmp: Counter = Counter()
            detected = set()
            # Count by final domain so redirect targets are counted once.
            seen_domains: Dict[str, Optional[str]] = {}
            for capture in captures.values():
                key = detect_cmp(capture).cmp_key
                domain = capture.final_domain
                if key is not None:
                    seen_domains[domain] = key
                else:
                    seen_domains.setdefault(domain, None)
            for domain, key in seen_domains.items():
                if key is not None:
                    per_cmp[key] += 1
                    detected.add(domain)
            counts[config_name] = per_cmp
            cmp_domains[config_name] = frozenset(detected)
        return cls(counts=counts, cmp_domains=cmp_domains)

    # ------------------------------------------------------------------
    # Cache serialization (repro.cache vantage artifacts)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serializable payload.

        Config and per-CMP counter insertion orders are preserved as
        ordered pair lists (``rows``/``format_table`` iterate them
        directly); ``cmp_domains`` sets are serialized sorted because
        frozenset iteration order is hash-randomized across processes.
        """
        return {
            "counts": [
                [name, [[k, n] for k, n in counter.items()]]
                for name, counter in self.counts.items()
            ],
            "cmp_domains": [
                [name, sorted(domains)]
                for name, domains in self.cmp_domains.items()
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "VantageTable":
        """Exact inverse of :meth:`to_payload`."""
        return cls(
            counts={
                name: Counter(dict(pairs))
                for name, pairs in payload["counts"]
            },
            cmp_domains={
                name: frozenset(domains)
                for name, domains in payload["cmp_domains"]
            },
        )

    # ------------------------------------------------------------------
    def total(self, config_name: str) -> int:
        return sum(self.counts[config_name].values())

    @property
    def best_config(self) -> str:
        """The configuration observing the most CMP domains."""
        return max(self.counts, key=self.total)

    def coverage(self, config_name: str) -> float:
        """Coverage relative to the best configuration (Table 1's last
        row)."""
        best = self.total(self.best_config)
        return self.total(config_name) / best if best else 1.0

    def count(self, config_name: str, cmp_key: str) -> int:
        return self.counts[config_name][cmp_key]

    def rows(self) -> List[Tuple[str, Dict[str, int], int, float]]:
        """Per-config (name, per-CMP counts, total, coverage) rows."""
        return [
            (
                name,
                {k: self.counts[name][k] for k in CMP_KEYS},
                self.total(name),
                self.coverage(name),
            )
            for name in self.counts
        ]

    def format_table(self) -> str:
        """Render the table in the paper's layout (CMPs as rows)."""
        configs = list(self.counts)
        widths = [max(10, len(c)) for c in configs]
        header = "CMP".ljust(12) + "  ".join(
            c.rjust(w) for c, w in zip(configs, widths)
        )
        lines = [header]
        for key in CMP_KEYS:
            name = cmp_by_key(key).name
            lines.append(
                name.ljust(12)
                + "  ".join(
                    str(self.counts[c][key]).rjust(w)
                    for c, w in zip(configs, widths)
                )
            )
        lines.append(
            "Total".ljust(12)
            + "  ".join(
                str(self.total(c)).rjust(w) for c, w in zip(configs, widths)
            )
        )
        lines.append(
            "Coverage".ljust(12)
            + "  ".join(
                f"{self.coverage(c) * 100:.0f}%".rjust(w)
                for c, w in zip(configs, widths)
            )
        )
        return "\n".join(lines)
