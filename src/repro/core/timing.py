"""User-interface time costs (I6/I7, Figures 9 and 10).

:class:`OptOutStudy` replays TrustArc's opt-out waterfall the way the
paper measured it on forbes.com: hourly for two weeks from a European
university vantage point, reporting medians -- at least 7 clicks and
34 s, an additional 279 requests to 25 domains and an additional
1.2 MB / 5.8 MB (compressed / uncompressed) of transfer.

:class:`TimingStudy` analyzes the randomized Quantcast dialog experiment:
median interaction times per configuration and decision, consent rates,
and the Mann-Whitney U tests as reported in Section 4.3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cmps.trustarc import (
    OptOutWaterfall,
    trustarc_accept_path,
    trustarc_optout_waterfall,
)
from repro.stats.descriptive import median
from repro.stats.mannwhitney import MannWhitneyResult, mann_whitney_u
from repro.users.behavior import DialogConfig
from repro.users.experiment import ExperimentData


# ----------------------------------------------------------------------
# Figure 9: the TrustArc opt-out waterfall
# ----------------------------------------------------------------------
@dataclass
class OptOutStudy:
    """Repeated measurements of the opt-out and accept paths."""

    optout_runs: List[OptOutWaterfall]
    accept_runs: List[OptOutWaterfall]

    @classmethod
    def run(
        cls,
        *,
        n_runs: int = 14 * 24,  # hourly for two weeks (Section 3.4)
        seed: int = 9,
    ) -> "OptOutStudy":
        rng = random.Random(seed)
        optout = [trustarc_optout_waterfall(rng) for _ in range(n_runs)]
        accept = [trustarc_accept_path(rng) for _ in range(n_runs)]
        return cls(optout_runs=optout, accept_runs=accept)

    # -- medians (the numbers the paper reports) -----------------------
    @property
    def median_duration(self) -> float:
        return median([w.total_duration for w in self.optout_runs])

    @property
    def median_clicks(self) -> int:
        return int(median([w.n_clicks for w in self.optout_runs]))

    @property
    def median_extra_requests(self) -> float:
        """Extra requests of opting out relative to accepting."""
        accept = median([w.extra_requests for w in self.accept_runs])
        optout = median([w.extra_requests for w in self.optout_runs])
        return optout - accept

    @property
    def median_partner_domains(self) -> float:
        return median([len(w.partner_domains) for w in self.optout_runs])

    @property
    def median_extra_mb_compressed(self) -> float:
        return median([w.wire_bytes for w in self.optout_runs]) / 1e6

    @property
    def median_extra_mb_uncompressed(self) -> float:
        return median([w.uncompressed_bytes for w in self.optout_runs]) / 1e6

    @property
    def median_accept_duration(self) -> float:
        """Accepting closes the dialog immediately."""
        return median([w.total_duration for w in self.accept_runs])

    def step_breakdown(self) -> List[Tuple[str, float]]:
        """Median duration per step label -- the Figure 9 waterfall."""
        labels = [s.label for s in self.optout_runs[0].steps]
        out = []
        for i, label in enumerate(labels):
            out.append(
                (
                    label,
                    median(
                        [w.steps[i].duration for w in self.optout_runs]
                    ),
                )
            )
        return out

    def rows(self) -> List[Tuple[str, float]]:
        """The summary rows the bench harness prints."""
        return [
            ("median opt-out duration (s)", self.median_duration),
            ("median accept duration (s)", self.median_accept_duration),
            ("median clicks to opt out", float(self.median_clicks)),
            ("median extra requests", self.median_extra_requests),
            ("median partner domains", self.median_partner_domains),
            ("median extra MB (compressed)", self.median_extra_mb_compressed),
            ("median extra MB (uncompressed)", self.median_extra_mb_uncompressed),
        ]


# ----------------------------------------------------------------------
# Figure 10: the Quantcast dialog experiment
# ----------------------------------------------------------------------
@dataclass
class TimingStudy:
    """Analysis of an :class:`~repro.users.experiment.ExperimentData`."""

    data: ExperimentData

    def times(self, config: DialogConfig, decision: str) -> List[float]:
        return self.data.interaction_times(config, decision)

    def median_time(self, config: DialogConfig, decision: str) -> float:
        return median(self.times(config, decision))

    def consent_rate(self, config: DialogConfig) -> float:
        return self.data.consent_rate(config)

    def accept_vs_reject_test(
        self, config: DialogConfig
    ) -> MannWhitneyResult:
        """The paper's per-configuration Mann-Whitney U test."""
        return mann_whitney_u(
            self.times(config, "accept"), self.times(config, "reject")
        )

    def summary(self) -> Dict[str, float]:
        """The Figure 10 numbers in one flat mapping."""
        direct, options = DialogConfig.DIRECT_REJECT, DialogConfig.MORE_OPTIONS
        t_direct = self.accept_vs_reject_test(direct)
        t_options = self.accept_vs_reject_test(options)
        return {
            "direct/accept-median": self.median_time(direct, "accept"),
            "direct/reject-median": self.median_time(direct, "reject"),
            "options/accept-median": self.median_time(options, "accept"),
            "options/reject-median": self.median_time(options, "reject"),
            "direct/consent-rate": self.consent_rate(direct),
            "options/consent-rate": self.consent_rate(options),
            "direct/z": t_direct.z,
            "direct/p": t_direct.p_value,
            "options/z": t_options.z,
            "options/p": t_options.p_value,
            "n-shown": float(len(self.data.shown())),
        }
