"""Privacy-law event alignment (the Figure 6 annotations).

The paper finds that laws *coming into effect* (GDPR, CCPA) coincide
with spikes in CMP adoption, while enforcement actions and regulatory
guidance do not. This module quantifies that claim: for each event, it
measures the adoption growth in a window around the event and compares
it against the baseline monthly growth.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.adoption import AdoptionSeries
from repro.datasets import PRIVACY_LAW_EVENTS, Event


@dataclass(frozen=True)
class EventImpact:
    """Adoption growth around one annotated event."""

    event: Event
    #: Total CMP sites shortly before the event.
    before: int
    #: Total CMP sites after the window.
    after: int
    #: Baseline growth per window of the same length (study median).
    baseline_growth: float

    @property
    def growth(self) -> int:
        return self.after - self.before

    @property
    def excess_growth(self) -> float:
        """Growth minus baseline; spikes show up as large positives."""
        return self.growth - self.baseline_growth


def event_impacts(
    series: AdoptionSeries,
    events: Sequence[Event] = PRIVACY_LAW_EVENTS,
    *,
    window_days: int = 45,
    baseline_dates: Optional[Sequence[dt.date]] = None,
) -> List[EventImpact]:
    """Measure adoption growth around every event.

    *baseline_dates* (default: monthly grid over 2018-09..2019-11, a
    stretch without law-effective events) calibrates normal growth.
    """
    if baseline_dates is None:
        baseline_dates = [
            dt.date(2018, 9, 1) + dt.timedelta(days=30 * i) for i in range(15)
        ]
    baseline_growths = []
    for d in baseline_dates:
        a = series.total_on(d)
        b = series.total_on(d + dt.timedelta(days=window_days))
        baseline_growths.append(b - a)
    baseline_growths.sort()
    baseline = baseline_growths[len(baseline_growths) // 2]

    out = []
    for event in events:
        before = series.total_on(event.date - dt.timedelta(days=7))
        after = series.total_on(
            event.date + dt.timedelta(days=window_days)
        )
        out.append(
            EventImpact(
                event=event,
                before=before,
                after=after,
                baseline_growth=float(baseline),
            )
        )
    return out


def law_effective_events_spike(
    impacts: Sequence[EventImpact], factor: float = 1.2
) -> bool:
    """True if every law-effective event shows above-baseline growth by
    at least *factor*, reproducing the paper's qualitative claim.

    The default factor is deliberately modest: the baseline window
    itself contains strong secular growth (OneTrust's continuous
    expansion), so even the paper's visually obvious spikes are a
    fraction above trend rather than multiples of it.
    """
    law = [i for i in impacts if i.event.kind == "law-effective"]
    if not law:
        raise ValueError("no law-effective events in the impact list")
    return all(
        i.growth >= factor * max(1.0, i.baseline_growth) for i in law
    )


def non_law_events_at_baseline(
    impacts: Sequence[EventImpact], slack: float = 1.35
) -> bool:
    """True if no enforcement/guidance event exceeds *slack* times the
    baseline growth -- "events relevant to privacy law like fines or
    regulatory guidance do not affect adoption" (Section 4.1)."""
    others = [
        i for i in impacts if i.event.kind in ("enforcement", "guidance")
    ]
    return all(
        i.growth <= slack * max(1.0, i.baseline_growth) for i in others
    )
