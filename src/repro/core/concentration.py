"""Market concentration and jurisdictional dominance (Section 5.2).

The discussion predicts that consent-sharing creates winner-takes-all
dynamics, but that "jurisdictional boundaries will likely lead to
multiple distinct coalitions given Quantcast and OneTrust appear to be
establishing dominance in the EU+UK and the US respectively". This
module quantifies both claims over the synthetic ecosystem:

* the Herfindahl-Hirschman index (HHI) of the CMP market over time;
* per-jurisdiction market leaders, splitting sites into EU+UK TLDs and
  the rest (the paper's Section 4.1 operationalization).
"""

from __future__ import annotations

import datetime as dt
from collections import Counter
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.web.worldgen import World


def hhi(counts: Mapping[str, int]) -> float:
    """Herfindahl-Hirschman index of a market, in [1/n, 1].

    1.0 is a monopoly; 1/n is a perfectly even n-firm split. Raises on
    an empty market.
    """
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("empty market")
    return sum((n / total) ** 2 for n in counts.values())


def cmp_counts(
    world: World, date: dt.date, *, max_rank: Optional[int] = None
) -> Counter:
    """Ground-truth CMP counts over the top *max_rank* sites."""
    limit = max_rank if max_rank is not None else world.n_domains
    counts: Counter = Counter()
    for rank in range(1, limit + 1):
        key = world.site(rank).cmp_on(date)
        if key is not None:
            counts[key] += 1
    return counts


def hhi_series(
    world: World,
    dates: Sequence[dt.date],
    *,
    max_rank: int = 10_000,
) -> List[Tuple[dt.date, float]]:
    """The CMP market's HHI over time (empty markets are skipped)."""
    out: List[Tuple[dt.date, float]] = []
    for date in dates:
        counts = cmp_counts(world, date, max_rank=max_rank)
        if counts:
            out.append((date, hhi(counts)))
    return out


@dataclass(frozen=True)
class JurisdictionReport:
    """Market structure split by jurisdiction proxy (TLD)."""

    date: dt.date
    eu_uk_counts: Counter
    other_counts: Counter

    @property
    def eu_uk_leader(self) -> str:
        return self.eu_uk_counts.most_common(1)[0][0]

    @property
    def other_leader(self) -> str:
        return self.other_counts.most_common(1)[0][0]

    @property
    def distinct_coalitions(self) -> bool:
        """True if the two jurisdictions have different market leaders --
        the paper's counterpoint to the single-global-coalition
        prediction."""
        return self.eu_uk_leader != self.other_leader

    def leader_share(self, jurisdiction: str) -> float:
        counts = (
            self.eu_uk_counts if jurisdiction == "eu-uk" else self.other_counts
        )
        total = sum(counts.values())
        if total == 0:
            raise ValueError(f"no CMP sites in {jurisdiction!r}")
        return counts.most_common(1)[0][1] / total


def jurisdiction_report(
    world: World, date: dt.date, *, max_rank: int = 10_000
) -> JurisdictionReport:
    """Split the CMP market by EU+UK vs other TLDs at *date*."""
    eu: Counter = Counter()
    other: Counter = Counter()
    for rank in range(1, min(max_rank, world.n_domains) + 1):
        site = world.site(rank)
        key = site.cmp_on(date)
        if key is None:
            continue
        (eu if site.is_eu_uk_tld else other)[key] += 1
    return JurisdictionReport(date=date, eu_uk_counts=eu, other_counts=other)
