"""Consent-signal violations (the Matte et al. cross-check).

The paper's related work (Matte, Bielova & Santos, S&P 2020) compares
the preferences users *express* against the consent strings actually
*stored*, finding e.g. sites that register positive consent after an
explicit opt-out. The structure the TCF provides makes this check
mechanical, and the paper argues regulators could run it at scale.

This module implements the detector over experiment records: decode the
stored TCF string and compare it with the logged decision. The
experiment harness can inject violating publishers
(``violation_rate``) so the detector has something real to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.tcf.consentstring import (
    ConsentString,
    ConsentStringError,
    decode_consent_string,
)

VIOLATION_KINDS = (
    "consent-after-optout",
    "optout-not-stored",
    "undecoded-signal",
)


@dataclass(frozen=True)
class Violation:
    """One detected mismatch between decision and stored signal."""

    visit_id: int
    kind: str
    detail: str

    def __post_init__(self) -> None:
        if self.kind not in VIOLATION_KINDS:
            raise ValueError(f"unknown violation kind {self.kind!r}")


@dataclass
class ViolationReport:
    """Aggregate of the decision-vs-signal audit."""

    checked: int
    violations: List[Violation]

    @property
    def violation_rate(self) -> float:
        if self.checked == 0:
            raise ValueError("no records checked")
        return len(self.violations) / self.checked

    def of_kind(self, kind: str) -> List[Violation]:
        return [v for v in self.violations if v.kind == kind]


def check_record(
    visit_id: int, decision: Optional[str], consent_string: Optional[str]
) -> Optional[Violation]:
    """Compare one logged decision with its stored consent string."""
    if decision is None or consent_string is None:
        return None
    try:
        consent = decode_consent_string(consent_string)
    except ConsentStringError as exc:
        return Violation(
            visit_id=visit_id,
            kind="undecoded-signal",
            detail=f"stored signal does not decode: {exc}",
        )
    if decision == "reject":
        if consent.allowed_purposes or consent.vendor_consents:
            return Violation(
                visit_id=visit_id,
                kind="consent-after-optout",
                detail=(
                    f"user rejected but signal grants "
                    f"{len(consent.allowed_purposes)} purposes / "
                    f"{len(consent.vendor_consents)} vendors"
                ),
            )
    elif decision == "accept":
        if consent.is_full_opt_out:
            return Violation(
                visit_id=visit_id,
                kind="optout-not-stored",
                detail="user accepted but an empty signal was stored",
            )
    return None


def audit_experiment(records: Iterable) -> ViolationReport:
    """Audit experiment visitor records (anything with ``visit_id``,
    ``decision`` and ``consent_string`` attributes)."""
    checked = 0
    violations: List[Violation] = []
    for record in records:
        if record.decision is None or record.consent_string is None:
            continue
        checked += 1
        violation = check_record(
            record.visit_id, record.decision, record.consent_string
        )
        if violation is not None:
            violations.append(violation)
    return ViolationReport(checked=checked, violations=violations)
