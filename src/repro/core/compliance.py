"""Compliance auditing at scale (extension).

The paper's discussion argues that "regulators could exploit the
structure provided by CMPs to audit privacy practices at scale"
(Section 7), pointing at Matte et al.'s banner-compliance work and at
the CNIL guideline that accepting and refusing cookies must be "a real
choice ... presented at the same level". This module implements that
audit over captured dialog descriptors:

* **no reject path** -- the dialog offers no way to refuse at all;
* **asymmetric choice** -- accepting takes one click, refusing more
  (the CNIL-flagged pattern adopted by 45% of Quantcast's customers);
* **non-affirmative wording** -- free-form accept texts ("Whatever")
  that may not qualify as a "freely given, specific, informed and
  unambiguous indication" under GDPR Recital 32;
* **geo-gated dialogs** -- the CMP is embedded but the dialog is hidden
  from EU visitors, leaving EU data processing without recorded consent.

Each finding carries the registrable domain so a per-site report can be
assembled, mirroring how a regulator would consume the audit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cmps.base import DialogDescriptor
from repro.core.customization import is_affirmative_wording

#: Audit finding codes, ordered by severity.
FINDING_CODES = (
    "no-reject-path",
    "hidden-from-eu",
    "non-affirmative-wording",
    "asymmetric-choice",
)


@dataclass(frozen=True)
class Finding:
    """One potential compliance issue on one site."""

    domain: str
    cmp_key: str
    code: str
    detail: str

    def __post_init__(self) -> None:
        if self.code not in FINDING_CODES:
            raise ValueError(f"unknown finding code {self.code!r}")


def audit_dialog(domain: str, dialog: DialogDescriptor) -> List[Finding]:
    """Audit one captured dialog; returns all findings (possibly none).

    Dialogs replaced by a custom publisher UI (``api-only``) cannot be
    audited from the descriptor and yield no findings -- which is itself
    the paper's point about unreliable consent signals being shared.
    """
    if dialog.custom_api_only or dialog.kind == "none":
        return []
    findings: List[Finding] = []
    clicks = dialog.clicks_to_reject

    if "EU" not in dialog.shown_regions:
        findings.append(
            Finding(
                domain=domain,
                cmp_key=dialog.cmp_key,
                code="hidden-from-eu",
                detail="CMP embedded but dialog suppressed for EU visitors",
            )
        )
    if clicks == 0:
        findings.append(
            Finding(
                domain=domain,
                cmp_key=dialog.cmp_key,
                code="no-reject-path",
                detail="dialog offers no way to refuse consent",
            )
        )
    elif clicks > 1:
        findings.append(
            Finding(
                domain=domain,
                cmp_key=dialog.cmp_key,
                code="asymmetric-choice",
                detail=f"accept takes 1 click, reject takes {clicks}",
            )
        )
    if dialog.accept_wording and not is_affirmative_wording(
        dialog.accept_wording
    ):
        findings.append(
            Finding(
                domain=domain,
                cmp_key=dialog.cmp_key,
                code="non-affirmative-wording",
                detail=f"accept control labelled {dialog.accept_wording!r}",
            )
        )
    return findings


@dataclass
class ComplianceReport:
    """Aggregated audit over a crawl."""

    findings: List[Finding]
    sites_audited: int

    @property
    def sites_with_findings(self) -> int:
        return len({f.domain for f in self.findings})

    def by_code(self) -> Counter:
        return Counter(f.code for f in self.findings)

    def by_cmp(self) -> Dict[str, Counter]:
        out: Dict[str, Counter] = {}
        for f in self.findings:
            out.setdefault(f.cmp_key, Counter())[f.code] += 1
        return out

    def rate(self, code: str) -> float:
        """Share of audited sites exhibiting *code*."""
        if self.sites_audited == 0:
            raise ValueError("no sites audited")
        domains = {f.domain for f in self.findings if f.code == code}
        return len(domains) / self.sites_audited

    def rows(self) -> List[Tuple[str, int, float]]:
        counts = self.by_code()
        return [
            (code, counts[code], self.rate(code)) for code in FINDING_CODES
        ]


def audit_captures(captures: Mapping[str, object]) -> ComplianceReport:
    """Audit every toplist capture that stored a dialog descriptor.

    *captures* maps domains to captures (the shape produced by
    :class:`~repro.crawler.toplist_crawl.ToplistCrawlResult`).
    """
    findings: List[Finding] = []
    audited = 0
    for domain, capture in captures.items():
        dialog: Optional[DialogDescriptor] = getattr(
            capture, "dom_dialog", None
        )
        if dialog is None:
            continue
        audited += 1
        findings.extend(audit_dialog(domain, dialog))
    return ComplianceReport(findings=findings, sites_audited=audited)
