"""Cumulative CMP marketshare by toplist size (I1, Figures 5 / A.4--A.6).

For a toplist prefix of size *n*, the marketshare of a CMP is the
percentage of those *n* domains embedding it on the analysis date. The
paper plots this cumulatively over sizes from 100 to one million,
showing the mid-market adoption hump (4% in the top 100, 13% in the top
1k, 1.51% in the top 1M -- Section 5.1).

Toplist prefixes up to ``exact_limit`` are evaluated exactly (every site
is generated); deeper strata are estimated by uniform sampling within
log-spaced rank strata, which keeps million-rank curves tractable while
remaining unbiased.
"""

from __future__ import annotations

import datetime as dt
import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cmps.base import CMP_KEYS
from repro.toplist.tranco import TrancoList
from repro.web.worldgen import World


@dataclass
class MarketShareCurve:
    """The Figure 5 data: per-CMP cumulative share at each toplist size."""

    date: dt.date
    sizes: List[int]
    #: cmp key -> cumulative count of adopters within each prefix.
    counts: Dict[str, List[float]]

    # ------------------------------------------------------------------
    # Cache serialization (repro.cache marketshare artifacts)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serializable payload; counts stay in CMP insertion
        order, and the floats round-trip exactly (JSON carries shortest
        repr, which Python parses back to the identical double)."""
        return {
            "date": self.date.isoformat(),
            "sizes": list(self.sizes),
            "counts": [
                [key, list(series)] for key, series in self.counts.items()
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MarketShareCurve":
        """Exact inverse of :meth:`to_payload`."""
        return cls(
            date=dt.date.fromisoformat(payload["date"]),
            sizes=list(payload["sizes"]),
            counts={key: list(series) for key, series in payload["counts"]},
        )

    def share(self, cmp_key: str, size: int) -> float:
        """Cumulative share (fraction) of *cmp_key* in the top *size*."""
        idx = self.sizes.index(size)
        return self.counts[cmp_key][idx] / size

    def total_share(self, size: int) -> float:
        idx = self.sizes.index(size)
        return sum(series[idx] for series in self.counts.values()) / size

    def rows(self) -> List[Tuple[int, float, Dict[str, float]]]:
        """(size, total share, per-CMP share) rows for reporting."""
        out = []
        for i, size in enumerate(self.sizes):
            per_cmp = {k: self.counts[k][i] / size for k in self.counts}
            out.append((size, sum(per_cmp.values()), per_cmp))
        return out


def default_sizes(max_size: int) -> List[int]:
    """Log-spaced toplist sizes from 100 up to *max_size*."""
    sizes = []
    x = 2.0
    while True:
        size = int(round(10**x))
        if size > max_size:
            break
        sizes.append(size)
        x += 0.25
    if sizes and sizes[-1] != max_size:
        sizes.append(max_size)
    return sizes


def marketshare_by_toplist_size(
    world: World,
    tranco: TrancoList,
    date: dt.date,
    sizes: Optional[Sequence[int]] = None,
    *,
    exact_limit: int = 10_000,
    samples_per_stratum: int = 2_000,
    seed: int = 5,
) -> MarketShareCurve:
    """Compute the cumulative marketshare curve at *date*."""
    max_size = len(tranco)
    if sizes is None:
        sizes = default_sizes(max_size)
    sizes = sorted(set(min(s, max_size) for s in sizes))
    if sizes[0] < 1:
        raise ValueError("toplist sizes must be positive")

    rng = random.Random(seed)
    cum: Counter = Counter()
    counts: Dict[str, List[float]] = {k: [] for k in CMP_KEYS}
    prev = 0
    for size in sizes:
        stratum = tranco.top_true_ranks(size)[prev:]
        if size <= exact_limit or len(stratum) <= samples_per_stratum:
            for true_rank in stratum.tolist():
                cmp_key = world.site(int(true_rank)).cmp_on(date)
                if cmp_key is not None:
                    cum[cmp_key] += 1
        else:
            sampled = rng.sample(range(len(stratum)), samples_per_stratum)
            stratum_counts: Counter = Counter()
            for idx in sampled:
                cmp_key = world.site(int(stratum[idx])).cmp_on(date)
                if cmp_key is not None:
                    stratum_counts[cmp_key] += 1
            scale = len(stratum) / samples_per_stratum
            for key, n in stratum_counts.items():
                cum[key] += n * scale
        for key in CMP_KEYS:
            counts[key].append(float(cum[key]))
        prev = size
    return MarketShareCurve(date=date, sizes=list(sizes), counts=counts)


def peak_band(
    curve: MarketShareCurve, band_edges: Sequence[int] = (50, 1000, 10_000)
) -> Tuple[int, int]:
    """The rank band with the highest adoption *density*.

    Returns the ``(lo, hi]`` band among consecutive curve sizes whose
    per-rank density of CMP sites is highest -- the paper's "most
    prevalent among the 50-10,000th websites" claim (Section 4.1).
    """
    best = None
    best_density = -math.inf
    totals = [sum(curve.counts[k][i] for k in curve.counts)
              for i in range(len(curve.sizes))]
    prev_size, prev_total = 0, 0.0
    for size, total in zip(curve.sizes, totals):
        density = (total - prev_total) / (size - prev_size)
        if density > best_density:
            best_density = density
            best = (prev_size, size)
        prev_size, prev_total = size, total
    assert best is not None
    return best
