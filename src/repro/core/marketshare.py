"""Cumulative CMP marketshare by toplist size (I1, Figures 5 / A.4--A.6).

For a toplist prefix of size *n*, the marketshare of a CMP is the
percentage of those *n* domains embedding it on the analysis date. The
paper plots this cumulatively over sizes from 100 to one million,
showing the mid-market adoption hump (4% in the top 100, 13% in the top
1k, 1.51% in the top 1M -- Section 5.1).

Toplist prefixes up to ``exact_limit`` are evaluated exactly (every site
is generated); deeper strata are estimated by uniform sampling within
log-spaced rank strata, which keeps million-rank curves tractable while
remaining unbiased.
"""

from __future__ import annotations

import bisect
import datetime as dt
import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cmps.base import CMP_KEYS
from repro.toplist.tranco import TrancoList
from repro.web.worldgen import World


@dataclass
class MarketShareCurve:
    """The Figure 5 data: per-CMP cumulative share at each toplist size."""

    date: dt.date
    sizes: List[int]
    #: cmp key -> cumulative count of adopters within each prefix.
    counts: Dict[str, List[float]]

    # ------------------------------------------------------------------
    # Cache serialization (repro.cache marketshare artifacts)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serializable payload; counts stay in CMP insertion
        order, and the floats round-trip exactly (JSON carries shortest
        repr, which Python parses back to the identical double)."""
        return {
            "date": self.date.isoformat(),
            "sizes": list(self.sizes),
            "counts": [
                [key, list(series)] for key, series in self.counts.items()
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MarketShareCurve":
        """Exact inverse of :meth:`to_payload`."""
        return cls(
            date=dt.date.fromisoformat(payload["date"]),
            sizes=list(payload["sizes"]),
            counts={key: list(series) for key, series in payload["counts"]},
        )

    def share(self, cmp_key: str, size: int) -> float:
        """Cumulative share (fraction) of *cmp_key* in the top *size*.

        *size* need not be one of the recorded sample sizes: the curve
        is defined for every positive size via interpolate-or-clamp
        semantics (see :meth:`_counts_at`). Recorded sizes reproduce the
        exact recorded value. This used to raise ``ValueError`` for any
        unrecorded size (``sizes.index``) -- pinned by regression tests.
        """
        return self._counts_at(self.counts[cmp_key], size) / size

    def total_share(self, size: int) -> float:
        """Cumulative share of *any* CMP in the top *size* (same
        interpolate-or-clamp semantics as :meth:`share`)."""
        return (
            sum(self._counts_at(series, size) for series in self.counts.values())
            / size
        )

    def _counts_at(self, series: Sequence[float], size: int) -> float:
        """Cumulative adopter count at *size*, for any positive size.

        * a recorded size returns the recorded count exactly;
        * between two recorded sizes the count interpolates linearly
          (adoption density assumed uniform within the gap);
        * below the smallest recorded size the count interpolates
          linearly from ``(0, 0)`` -- i.e. the share clamps to the
          smallest prefix's share instead of silently reading another
          bucket;
        * above the largest recorded size the count clamps to the last
          recorded value (no adopters are invented beyond the data).
        """
        if size < 1:
            raise ValueError("toplist size must be positive")
        sizes = self.sizes
        idx = bisect.bisect_left(sizes, size)
        if idx < len(sizes) and sizes[idx] == size:
            return series[idx]
        if idx == 0:
            # Below the smallest sample: density clamped to its share.
            return series[0] * (size / sizes[0])
        if idx == len(sizes):
            return series[-1]
        lo_size, hi_size = sizes[idx - 1], sizes[idx]
        lo, hi = series[idx - 1], series[idx]
        return lo + (hi - lo) * (size - lo_size) / (hi_size - lo_size)

    def rows(self) -> List[Tuple[int, float, Dict[str, float]]]:
        """(size, total share, per-CMP share) rows for reporting."""
        out = []
        for i, size in enumerate(self.sizes):
            per_cmp = {k: self.counts[k][i] / size for k in self.counts}
            out.append((size, sum(per_cmp.values()), per_cmp))
        return out


def default_sizes(max_size: int) -> List[int]:
    """Log-spaced toplist sizes from 100 up to *max_size*."""
    sizes = []
    x = 2.0
    while True:
        size = int(round(10**x))
        if size > max_size:
            break
        sizes.append(size)
        x += 0.25
    if sizes and sizes[-1] != max_size:
        sizes.append(max_size)
    return sizes


def marketshare_by_toplist_size(
    world: World,
    tranco: TrancoList,
    date: dt.date,
    sizes: Optional[Sequence[int]] = None,
    *,
    exact_limit: int = 10_000,
    samples_per_stratum: int = 2_000,
    seed: int = 5,
) -> MarketShareCurve:
    """Compute the cumulative marketshare curve at *date*."""
    max_size = len(tranco)
    if sizes is None:
        sizes = default_sizes(max_size)
    sizes = sorted(set(min(s, max_size) for s in sizes))
    if sizes[0] < 1:
        raise ValueError("toplist sizes must be positive")

    rng = random.Random(seed)
    cum: Counter = Counter()
    counts: Dict[str, List[float]] = {k: [] for k in CMP_KEYS}
    prev = 0
    for size in sizes:
        stratum = tranco.top_true_ranks(size)[prev:]
        if size <= exact_limit or len(stratum) <= samples_per_stratum:
            for true_rank in stratum.tolist():
                cmp_key = world.site(int(true_rank)).cmp_on(date)
                if cmp_key is not None:
                    cum[cmp_key] += 1
        else:
            sampled = rng.sample(range(len(stratum)), samples_per_stratum)
            stratum_counts: Counter = Counter()
            for idx in sampled:
                cmp_key = world.site(int(stratum[idx])).cmp_on(date)
                if cmp_key is not None:
                    stratum_counts[cmp_key] += 1
            scale = len(stratum) / samples_per_stratum
            for key, n in stratum_counts.items():
                cum[key] += n * scale
        for key in CMP_KEYS:
            counts[key].append(float(cum[key]))
        prev = size
    return MarketShareCurve(date=date, sizes=list(sizes), counts=counts)


# ----------------------------------------------------------------------
# Observed (capture-derived) marketshare -- batch + incremental paths
# ----------------------------------------------------------------------
def observed_marketshare(
    series,
    ranks: Mapping[str, int],
    date: dt.date,
    sizes: Sequence[int],
) -> MarketShareCurve:
    """Marketshare curve from *observed* adoption state, not worldgen.

    The Figure 5 batch path asks the synthetic world directly
    (:func:`marketshare_by_toplist_size`); production measurement only
    has captures. This derives the same curve shape from an
    :class:`~repro.core.adoption.AdoptionSeries`: a domain counts for a
    CMP in prefix *n* when its interpolated timeline classifies it with
    that CMP on *date* and its toplist rank is <= *n*. *ranks* maps
    domain -> 1-based toplist rank.

    This is the batch counterpart of :class:`MarketShareAccumulator`;
    the streaming property tests pin byte-identical payloads between
    the two over any row feed.
    """
    sizes = sorted(set(int(s) for s in sizes))
    if not sizes or sizes[0] < 1:
        raise ValueError("toplist sizes must be positive")
    per_bucket: Dict[str, List[int]] = {k: [0] * len(sizes) for k in CMP_KEYS}
    max_size = sizes[-1]
    timelines = series.timelines
    for domain, rank in ranks.items():
        if rank > max_size:
            continue
        timeline = timelines.get(domain)
        if timeline is None:
            continue
        state = timeline.state_on(date)
        buckets = per_bucket.get(state) if state is not None else None
        if buckets is not None:
            buckets[bisect.bisect_left(sizes, rank)] += 1
    return _curve_from_buckets(date, sizes, per_bucket)


def _curve_from_buckets(
    date: dt.date, sizes: List[int], per_bucket: Mapping[str, Sequence[int]]
) -> MarketShareCurve:
    """Cumulative-sum integer rank-bucket counts into a curve.

    Counts are exact integers, so the cumulative float series is
    order-independent and byte-stable across batch and streaming."""
    counts: Dict[str, List[float]] = {}
    for key in CMP_KEYS:
        cum = 0
        series = []
        for n in per_bucket[key]:
            cum += n
            series.append(float(cum))
        counts[key] = series
    return MarketShareCurve(date=date, sizes=list(sizes), counts=counts)


class MarketShareAccumulator:
    """Incremental observed-marketshare state (streaming path).

    Maintains per-CMP adopter counts bucketed by toplist-rank stratum
    (bucket *i* covers ranks ``(sizes[i-1], sizes[i]]``), updated in
    O(1) per domain state transition instead of O(toplist) per query.
    Feed it the streaming engine's finalized state transitions
    (:meth:`transition`); :meth:`curve` materializes the
    :class:`MarketShareCurve` at the engine's watermark. Byte-identical
    to :func:`observed_marketshare` over the same state by the shared
    :func:`_curve_from_buckets` encoding.
    """

    def __init__(self, ranks: Mapping[str, int], sizes: Sequence[int]):
        self.sizes = sorted(set(int(s) for s in sizes))
        if not self.sizes or self.sizes[0] < 1:
            raise ValueError("toplist sizes must be positive")
        max_size = self.sizes[-1]
        #: domain -> bucket index (domains beyond the deepest prefix
        #: never contribute and are dropped here once).
        self._bucket: Dict[str, int] = {
            domain: bisect.bisect_left(self.sizes, rank)
            for domain, rank in ranks.items()
            if rank <= max_size
        }
        self._per_bucket: Dict[str, List[int]] = {
            k: [0] * len(self.sizes) for k in CMP_KEYS
        }

    def transition(
        self, domain: str, old: Optional[str], new: Optional[str]
    ) -> None:
        """Apply one finalized domain state change (``old -> new``)."""
        if old == new:
            return
        bucket = self._bucket.get(domain)
        if bucket is None:
            return
        if old is not None:
            series = self._per_bucket.get(old)
            if series is not None:
                series[bucket] -= 1
        if new is not None:
            series = self._per_bucket.get(new)
            if series is not None:
                series[bucket] += 1

    def curve(self, date: dt.date) -> MarketShareCurve:
        """The observed curve at *date* (the engine's watermark)."""
        return _curve_from_buckets(date, self.sizes, self._per_bucket)


def peak_band(
    curve: MarketShareCurve, band_edges: Sequence[int] = (50, 1000, 10_000)
) -> Tuple[int, int]:
    """The rank band with the highest adoption *density*.

    Returns the ``(lo, hi]`` band among consecutive curve sizes whose
    per-rank density of CMP sites is highest -- the paper's "most
    prevalent among the 50-10,000th websites" claim (Section 4.1).
    """
    best = None
    best_density = -math.inf
    totals = [sum(curve.counts[k][i] for k in curve.counts)
              for i in range(len(curve.sizes))]
    prev_size, prev_total = 0, 0.0
    for size, total in zip(curve.sizes, totals):
        density = (total - prev_total) / (size - prev_size)
        if density > best_density:
            best_density = density
            best = (prev_size, size)
        prev_size, prev_total = size, total
    assert best is not None
    return best
