"""The related-work comparison (Figure 1).

Figure 1 plots prior consent-measurement studies by sample size and
observation window, showing they are point-in-time snapshots of small
samples in a rapidly changing environment -- against this paper's
2.5-year, 4.2M-domain dataset. The data is static (it summarizes cited
papers); this module renders and sanity-checks it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.datasets import RELATED_WORK, RelatedStudy


@dataclass(frozen=True)
class ComparisonRow:
    """One row of the Figure 1 comparison."""

    study: RelatedStudy

    @property
    def is_snapshot(self) -> bool:
        """A point-in-time study: window of at most ~6 weeks."""
        return self.study.window_days <= 45

    @property
    def domains_ratio_to_this_paper(self) -> float:
        this = RELATED_WORK[-1]
        return self.study.n_domains / this.n_domains


def comparison_rows(
    studies: Sequence[RelatedStudy] = RELATED_WORK,
) -> List[ComparisonRow]:
    return [ComparisonRow(s) for s in studies]


def figure1_series() -> List[Tuple[str, int, int]]:
    """(name, n_domains, window_days) triples -- the Figure 1 scatter."""
    return [
        (s.name, s.n_domains, s.window_days) for s in RELATED_WORK
    ]


def this_paper_dominates() -> bool:
    """This paper's dataset exceeds every prior study in both sample
    size and window length (the visual claim of Figure 1)."""
    this = RELATED_WORK[-1]
    return all(
        s.n_domains <= this.n_domains and s.window_days <= this.window_days
        for s in RELATED_WORK[:-1]
    )
