"""CCPA affordances: the "Do Not Sell" census.

The CCPA requires businesses to let Californians opt out of the sale of
personal information, which surfaces as "Do Not Sell My Personal
Information" buttons and footer links — the paper observes them in the
OneTrust sample (11 of the 31 footer links) and attributes the 2020
adoption wave outside the EU to the CCPA. This module measures that
affordance across captured dialogs: who offers one, through which UI
element, and how the share grows once the law is in effect.
"""

from __future__ import annotations

import datetime as dt
import re
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Tuple

from repro.cmps.base import DialogDescriptor

#: Labels recognised as CCPA opt-out affordances.
_DNS_RE = re.compile(
    r"do not sell|california privacy|ccpa|your privacy choices",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class DnsAffordance:
    """One site's Do-Not-Sell affordance."""

    domain: str
    cmp_key: str
    #: "footer-link", "banner-button" or "settings-page".
    surface: str
    label: str


def find_dns_affordance(
    domain: str, dialog: DialogDescriptor
) -> Optional[DnsAffordance]:
    """Detect a CCPA opt-out affordance in one captured dialog."""
    for button in dialog.buttons:
        if not _DNS_RE.search(button.label):
            continue
        if dialog.kind == "footer-link":
            surface = "footer-link"
        elif button.page == 1:
            surface = "banner-button"
        else:
            surface = "settings-page"
        return DnsAffordance(
            domain=domain,
            cmp_key=dialog.cmp_key,
            surface=surface,
            label=button.label,
        )
    return None


@dataclass
class CcpaReport:
    """Aggregate Do-Not-Sell census."""

    affordances: List[DnsAffordance]
    sites_checked: int

    @property
    def n_sites(self) -> int:
        return len({a.domain for a in self.affordances})

    @property
    def share(self) -> float:
        if self.sites_checked == 0:
            raise ValueError("no sites checked")
        return self.n_sites / self.sites_checked

    def by_surface(self) -> Counter:
        return Counter(a.surface for a in self.affordances)

    def by_cmp(self) -> Counter:
        return Counter(a.cmp_key for a in self.affordances)


def ccpa_census(captures: Mapping[str, object]) -> CcpaReport:
    """Census over toplist captures (with stored dialog descriptors)."""
    affordances: List[DnsAffordance] = []
    checked = 0
    for domain, capture in captures.items():
        dialog = getattr(capture, "dom_dialog", None)
        if dialog is None:
            continue
        checked += 1
        found = find_dns_affordance(domain, dialog)
        if found is not None:
            affordances.append(found)
    return CcpaReport(affordances=affordances, sites_checked=checked)


def dns_share_over_time(
    world,
    dates: Iterable[dt.date],
    *,
    max_rank: int = 10_000,
) -> List[Tuple[dt.date, float]]:
    """Ground-truth share of CMP sites with a DNS affordance per date.

    Rises across the CCPA boundary as OneTrust's CCPA-oriented
    configurations spread.
    """
    out: List[Tuple[dt.date, float]] = []
    for date in dates:
        with_cmp = 0
        with_dns = 0
        for rank in range(1, min(max_rank, world.n_domains) + 1):
            site = world.site(rank)
            episode = site.episode_on(date)
            if episode is None:
                continue
            with_cmp += 1
            if find_dns_affordance(site.domain, episode.dialog) is not None:
                with_dns += 1
        out.append((date, with_dns / with_cmp if with_cmp else 0.0))
    return out
