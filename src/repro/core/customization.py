"""Publisher customization of consent dialogs (I3, Section 4.1).

Classifies the dialog configurations observed in the EU-university
toplist crawls (the only crawls storing DOM trees and full-page
screenshots). Classification is purely structural -- it looks at the
captured dialog descriptor's kind, buttons and gating, never at which
CMP sampler produced it -- mirroring how the paper's authors worked from
DOM snapshots.

The taxonomy follows Section 4.1:

* ``conventional-banner`` -- 1-click accept plus a settings link;
* ``direct-reject`` -- a first-page button that instantly opts out;
* ``waterfall-reject`` -- a first-page opt-out that must establish
  connections to multiple partners before closing;
* ``more-options`` -- fine-grained controls behind a second page;
* ``script-banner`` -- the "scripts" (not "cookies") linguistic shift;
* ``footer-link`` -- no banner, only a footer link;
* ``no-control-link`` -- a link/button not implying user control;
* ``hidden-from-eu`` -- dialog suppressed for EU visitors;
* ``api-only`` -- publisher keeps the CMP's API but builds its own UI.
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.cmps.base import DialogDescriptor

CATEGORIES = (
    "direct-reject",
    "waterfall-reject",
    "optout-banner",
    "conventional-banner",
    "more-options",
    "script-banner",
    "footer-link",
    "no-control-link",
    "hidden-from-eu",
    "api-only",
)

#: Labels marking a control as an opt-out in the paper's sense
#: ("Do Not Sell", "Reject/Manage Cookies", "Deny All", ...).
_OPTOUT_LABEL_RE = re.compile(
    r"do not sell|reject|deny|decline|opt.?out|manage cookies", re.IGNORECASE
)

#: Wordings counted as a variation of "I agree/consent/accept"
#: (Section 4.1: 87% of Quantcast publishers), including the non-English
#: translations the paper mentions.
_AGREE_RE = re.compile(
    r"agree|accept|consent|zustimm|stimme|accepte|acepto|accetto|akzept|\bok\b",
    re.IGNORECASE,
)

#: Marketing phrases that merely *contain* an agree-word but that the
#: paper lists among the free-form texts which "may not qualify as
#: affirmative consent" ("Accept and move on").
_FREEFORM_PHRASES = (
    "accept and move on",
    "ok, fine",
)


def classify_dialog(dialog: DialogDescriptor) -> str:
    """Assign one taxonomy category to a captured dialog descriptor."""
    if dialog.custom_api_only or dialog.kind == "none":
        return "api-only"
    if "EU" not in dialog.shown_regions:
        return "hidden-from-eu"
    if dialog.kind == "footer-link":
        return "footer-link"
    if dialog.kind == "script-banner":
        return "script-banner"
    if dialog.has_first_page_reject:
        if dialog.opt_out_waterfall:
            return "waterfall-reject"
        return "direct-reject"
    first_page = dialog.buttons_on_page(1)
    # A banner whose second-page opener is *labelled* as an opt-out
    # ("Do Not Sell" etc.) is an opt-out banner that requires further
    # clicks to confirm (40% of OneTrust's opt-out banners).
    if any(
        b.action == "more-options" and _OPTOUT_LABEL_RE.search(b.label)
        for b in first_page
    ):
        return "optout-banner"
    if any(b.action == "more-options" for b in first_page):
        # Distinguish the conventional banner (settings *link*) from a
        # modal whose second button is a real "More Options" button.
        if dialog.kind == "banner" and dialog.clicks_to_reject >= 2:
            return "conventional-banner"
        return "more-options"
    if any(b.action == "settings-link" for b in first_page):
        if dialog.clicks_to_reject >= 2:
            return "conventional-banner"
        return "no-control-link"
    return "no-control-link"


def is_affirmative_wording(label: str) -> bool:
    """True if the accept wording is a variation of agree/consent/accept.

    The remainder are free-form texts ("Whatever", "Sounds good") that
    "may not qualify as affirmative consent" (Section 4.1).
    """
    if label.strip().lower() in _FREEFORM_PHRASES:
        return False
    return bool(_AGREE_RE.search(label))


@dataclass
class CustomizationReport:
    """Per-CMP customization statistics."""

    #: cmp key -> category -> count.
    categories: Dict[str, Counter] = field(default_factory=dict)
    #: cmp key -> (affirmative wordings, free-form wordings).
    wordings: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: cmp key -> number of 1-click rejects among classified dialogs.
    one_click_rejects: Counter = field(default_factory=Counter)

    def n_sites(self, cmp_key: str) -> int:
        return sum(self.categories.get(cmp_key, Counter()).values())

    def category_share(self, cmp_key: str, category: str) -> float:
        n = self.n_sites(cmp_key)
        if n == 0:
            raise ValueError(f"no dialogs classified for {cmp_key!r}")
        return self.categories[cmp_key][category] / n

    def one_click_reject_share(self, cmp_key: str) -> float:
        """Share of sites offering a first-page 1-click opt-out."""
        n = self.n_sites(cmp_key)
        if n == 0:
            raise ValueError(f"no dialogs classified for {cmp_key!r}")
        return self.one_click_rejects[cmp_key] / n

    def optout_banner_share(self, cmp_key: str) -> float:
        """Share of sites whose banner contains an opt-out control, with
        or without a confirmation step (the paper's 2.4% for OneTrust)."""
        return self.category_share(cmp_key, "direct-reject") + self.category_share(
            cmp_key, "optout-banner"
        )

    def affirmative_wording_share(self, cmp_key: str) -> float:
        affirmative, freeform = self.wordings.get(cmp_key, (0, 0))
        total = affirmative + freeform
        if total == 0:
            raise ValueError(f"no wordings recorded for {cmp_key!r}")
        return affirmative / total

    def api_only_share_overall(self) -> float:
        """Share of all classified sites using the CMP's API only (the
        paper estimates about 8%)."""
        total = sum(self.n_sites(k) for k in self.categories)
        api_only = sum(c["api-only"] for c in self.categories.values())
        return api_only / total if total else 0.0

    def rows(self) -> List[Tuple[str, Dict[str, float]]]:
        return [
            (
                key,
                {
                    cat: self.categories[key][cat] / self.n_sites(key)
                    for cat in CATEGORIES
                },
            )
            for key in self.categories
            if self.n_sites(key)
        ]


def classify_dialogs(
    dialogs: Iterable[DialogDescriptor],
) -> CustomizationReport:
    """Classify a collection of captured dialogs into the taxonomy."""
    report = CustomizationReport()
    wording_counts: Dict[str, List[int]] = defaultdict(lambda: [0, 0])
    for dialog in dialogs:
        key = dialog.cmp_key
        report.categories.setdefault(key, Counter())[
            classify_dialog(dialog)
        ] += 1
        if dialog.has_first_page_reject:
            report.one_click_rejects[key] += 1
        if dialog.accept_wording:
            if is_affirmative_wording(dialog.accept_wording):
                wording_counts[key][0] += 1
            else:
                wording_counts[key][1] += 1
    report.wordings = {
        k: (a, f) for k, (a, f) in wording_counts.items()
    }
    return report


def dialogs_from_captures(captures: Mapping[str, object]) -> List[DialogDescriptor]:
    """Extract stored DOM dialog descriptors from toplist captures."""
    out = []
    for capture in captures.values():
        dialog = getattr(capture, "dom_dialog", None)
        if dialog is not None:
            out.append(dialog)
    return out
