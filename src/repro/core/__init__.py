"""The paper's analyses (the primary contribution).

One module per part of the evaluation:

* :mod:`repro.core.adoption` -- longitudinal CMP adoption with the
  paper's interpolation and 30-day fade-out rules (Figure 6, I2);
* :mod:`repro.core.marketshare` -- cumulative marketshare as a function
  of toplist size (Figures 5, A.4--A.6, I1);
* :mod:`repro.core.switching` -- inter-CMP switching flows (Figure 4);
* :mod:`repro.core.vantage` -- vantage-point comparison over the toplist
  crawls (Tables 1 and A.3);
* :mod:`repro.core.customization` -- publisher dialog-customization
  classification (Section 4.1, I3);
* :mod:`repro.core.gvl_analysis` -- vendor purposes and lawful bases
  over the GVL history (Figures 7 and 8, I4/I5);
* :mod:`repro.core.timing` -- opt-out waterfall and dialog-interaction
  timing (Figures 9 and 10, I6/I7);
* :mod:`repro.core.timeline` -- privacy-law event alignment (Figure 6
  annotations);
* :mod:`repro.core.relatedwork` -- the sample-size/time-window
  comparison with prior work (Figure 1).
"""

from repro.core.adoption import AdoptionSeries, DomainTimeline
from repro.core.compliance import ComplianceReport, audit_captures, audit_dialog
from repro.core.concentration import hhi, hhi_series, jurisdiction_report
from repro.core.customization import CustomizationReport, classify_dialogs
from repro.core.gvl_analysis import GvlAnalysis
from repro.core.marketshare import MarketShareCurve, marketshare_by_toplist_size
from repro.core.switching import SwitchingFlows
from repro.core.timing import OptOutStudy, TimingStudy
from repro.core.vantage import VantageTable

__all__ = [
    "DomainTimeline",
    "AdoptionSeries",
    "MarketShareCurve",
    "marketshare_by_toplist_size",
    "SwitchingFlows",
    "VantageTable",
    "CustomizationReport",
    "classify_dialogs",
    "GvlAnalysis",
    "OptOutStudy",
    "TimingStudy",
    "ComplianceReport",
    "audit_dialog",
    "audit_captures",
    "hhi",
    "hhi_series",
    "jurisdiction_report",
]
