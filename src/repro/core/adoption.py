"""Longitudinal CMP-adoption analysis (I1/I2, Figure 6).

Implements the paper's handling of irregular sampling (Section 3.2):

* per-day aggregation with the subsite heuristic -- a site counts as
  CMP-using on a day if the CMP appears in at least every third capture
  of that day;
* **interpolation**: a gap between two equally-classified observations
  is filled with that classification; disagreeing boundaries leave the
  gap unclassified;
* **right-censoring / fade-out**: after the last observation, the state
  is extended for at most 30 days, then fades to "unknown".
"""

from __future__ import annotations

import bisect
import datetime as dt
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.crawler.capture import Observation

#: Fade-out horizon for right-censored domains (Section 3.2).
FADE_OUT_DAYS = 30

#: "At least every third capture" subsite heuristic (Section 3.5).
SUBSITE_THRESHOLD = 1 / 3


@dataclass(frozen=True)
class _Interval:
    start: dt.date  # inclusive
    end: dt.date  # exclusive
    cmp_key: Optional[str]


@dataclass(frozen=True)
class DomainTimeline:
    """One domain's interpolated CMP state over time."""

    domain: str
    intervals: Tuple[_Interval, ...]
    n_observations: int

    # ------------------------------------------------------------------
    @classmethod
    def from_observations(
        cls,
        domain: str,
        observations: Sequence[Observation],
        *,
        interpolate: bool = True,
        fade_out_days: int = FADE_OUT_DAYS,
    ) -> "DomainTimeline":
        """Build the interpolated timeline from raw observations.

        ``interpolate=False`` and/or ``fade_out_days=0`` disable the two
        estimator components -- used by the ablation benchmarks to show
        how much of the Figure 6 series each rule contributes.
        """
        return cls._from_daily(
            domain,
            _daily_states(observations),
            len(observations),
            interpolate=interpolate,
            fade_out_days=fade_out_days,
        )

    @classmethod
    def from_day_rows(
        cls,
        domain: str,
        rows: Sequence[Tuple[int, Optional[str]]],
        *,
        interpolate: bool = True,
        fade_out_days: int = FADE_OUT_DAYS,
    ) -> "DomainTimeline":
        """:meth:`from_observations` on raw ``(date_ordinal, cmp_key)``
        pairs (:meth:`CaptureStore.domain_day_rows
        <repro.crawler.columnar.CaptureStore.domain_day_rows>`).

        Bit-identical to the object path: rows arrive in insertion
        order, so the per-day capture lists -- and therefore the 1/3
        vote and its ``Counter`` tie-breaking -- are sequenced exactly
        as :func:`_daily_states` sees them.
        """
        return cls._from_daily(
            domain,
            _daily_states_from_rows(rows),
            len(rows),
            interpolate=interpolate,
            fade_out_days=fade_out_days,
        )

    @classmethod
    def _from_daily(
        cls,
        domain: str,
        daily: Dict[dt.date, Optional[str]],
        n_observations: int,
        *,
        interpolate: bool,
        fade_out_days: int,
    ) -> "DomainTimeline":
        if not daily:
            return cls(domain=domain, intervals=(), n_observations=0)
        days = sorted(daily)
        intervals: List[_Interval] = []

        for today, next_day in zip(days, days[1:]):
            state = daily[today]
            if interpolate and daily[next_day] == state:
                # Equal boundaries: interpolate straight through the gap.
                _append(intervals, today, next_day, state)
            else:
                # Disagreeing boundaries: the observation day itself keeps
                # its state; the gap stays unclassified ("we do not assume
                # the presence of the CMP in the intermediate period").
                _append(intervals, today, today + dt.timedelta(days=1), state)
        last = days[-1]
        # Fade-out horizon, audited: interval ends are *exclusive*, so
        # ``last + fade_out_days + 1`` keeps the state alive on the
        # observation day itself plus exactly ``fade_out_days`` extension
        # days -- day ``last + 30`` is still classified, day ``last + 31``
        # is unknown. The ``+ 1`` is the inclusive->exclusive conversion,
        # not an off-by-one (pinned by the day-30/31 boundary tests).
        _append(
            intervals,
            last,
            last + dt.timedelta(days=fade_out_days + 1),
            daily[last],
        )
        return cls(
            domain=domain,
            intervals=tuple(intervals),
            n_observations=n_observations,
        )

    # ------------------------------------------------------------------
    def state_on(self, date: dt.date) -> Optional[str]:
        """The domain's CMP on *date*, or ``None``.

        ``None`` means either "no CMP" or "unknown" -- the adoption
        counts treat both as absence, exactly like the paper's fade-out.
        Queries outside the materialized window are always absence:
        any *date* before :attr:`first_observed` or on/after
        ``last + fade_out_days + 1`` returns ``None``, never raises and
        never leaks an expired classification (pinned by the 30/31
        boundary tests, batch and streaming).
        """
        starts = self._starts
        idx = bisect.bisect_right(starts, date) - 1
        if idx < 0:
            return None
        iv = self.intervals[idx]
        if iv.start <= date < iv.end:
            return iv.cmp_key
        return None

    @property
    def _starts(self) -> List[dt.date]:
        """Interval start dates, built once per timeline.

        ``state_on`` used to rebuild this list on every call -- O(n)
        per query, which the streaming query server would pay per
        domain per request. Timelines are immutable after construction,
        so the list is cached on first use (written through
        ``object.__setattr__`` to bypass the frozen guard; equality and
        hashing never see it)."""
        cached = self.__dict__.get("_starts_cache")
        if cached is None:
            cached = [iv.start for iv in self.intervals]
            object.__setattr__(self, "_starts_cache", cached)
        return cached

    @property
    def first_observed(self) -> Optional[dt.date]:
        return self.intervals[0].start if self.intervals else None

    # ------------------------------------------------------------------
    # Cache serialization (repro.cache adoption artifacts)
    # ------------------------------------------------------------------
    def to_record(self) -> list:
        """This timeline as a JSON-serializable record."""
        return [
            self.domain,
            self.n_observations,
            [
                [iv.start.isoformat(), iv.end.isoformat(), iv.cmp_key]
                for iv in self.intervals
            ],
        ]

    @classmethod
    def from_record(cls, record: list) -> "DomainTimeline":
        """Exact inverse of :meth:`to_record`."""
        domain, n_observations, intervals = record
        return cls(
            domain=domain,
            n_observations=n_observations,
            intervals=tuple(
                _Interval(
                    dt.date.fromisoformat(start),
                    dt.date.fromisoformat(end),
                    cmp_key,
                )
                for start, end, cmp_key in intervals
            ),
        )

    @property
    def cmp_stints(self) -> Tuple[Tuple[str, dt.date, dt.date], ...]:
        """Maximal (cmp, start, end) runs with a CMP present."""
        out: List[Tuple[str, dt.date, dt.date]] = []
        for iv in self.intervals:
            if iv.cmp_key is None:
                continue
            if out and out[-1][0] == iv.cmp_key and out[-1][2] >= iv.start:
                out[-1] = (iv.cmp_key, out[-1][1], iv.end)
            else:
                out.append((iv.cmp_key, iv.start, iv.end))
        return tuple(out)


def day_vote(states: Sequence[Optional[str]]) -> Optional[str]:
    """One day's CMP classification from its capture states, in order.

    The "at least every third capture" subsite heuristic (Section 3.5):
    the day counts as CMP-using when >= 1/3 of its captures saw a CMP,
    classified as the most common CMP key. Ties break by first
    appearance in *states* (``Counter.most_common`` insertion order),
    so callers must pass states in capture order. Shared by the batch
    estimators and the streaming engine's day-watermark finalization --
    one vote implementation, bit-identical on both paths.
    """
    with_cmp = [s for s in states if s is not None]
    if len(with_cmp) / len(states) >= SUBSITE_THRESHOLD:
        return Counter(with_cmp).most_common(1)[0][0]
    return None


def _daily_states(
    observations: Sequence[Observation],
) -> Dict[dt.date, Optional[str]]:
    """Aggregate captures into one state per day via the 1/3 heuristic."""
    per_day: Dict[dt.date, List[Optional[str]]] = defaultdict(list)
    for obs in observations:
        per_day[obs.date].append(obs.cmp_key)
    return {day: day_vote(states) for day, states in per_day.items()}


def _daily_states_from_rows(
    rows: Sequence[Tuple[int, Optional[str]]],
) -> Dict[dt.date, Optional[str]]:
    """:func:`_daily_states` on ``(date_ordinal, cmp_key)`` pairs.

    Same vote, same tie-breaking: per-day lists collect states in row
    order (the columnar store's insertion order), matching the order
    the object path builds them in.
    """
    per_day: Dict[int, List[Optional[str]]] = defaultdict(list)
    for ordinal, cmp_key in rows:
        per_day[ordinal].append(cmp_key)
    return {
        dt.date.fromordinal(ordinal): day_vote(states)
        for ordinal, states in per_day.items()
    }


def _append(
    intervals: List[_Interval],
    start: dt.date,
    end: dt.date,
    state: Optional[str],
) -> None:
    if intervals and intervals[-1].cmp_key == state and intervals[-1].end >= start:
        intervals[-1] = _Interval(intervals[-1].start, max(intervals[-1].end, end), state)
    else:
        intervals.append(_Interval(start, end, state))


# ----------------------------------------------------------------------
# The adoption time series (Figure 6)
# ----------------------------------------------------------------------
@dataclass
class AdoptionSeries:
    """CMP counts over time across a set of domains."""

    timelines: Dict[str, DomainTimeline]

    @classmethod
    def from_store(
        cls,
        by_domain: Mapping[str, Sequence[Observation]],
        restrict_to: Optional[Iterable[str]] = None,
        *,
        interpolate: bool = True,
        fade_out_days: int = FADE_OUT_DAYS,
    ) -> "AdoptionSeries":
        """Build timelines for every (or a restricted set of) domain(s).

        *restrict_to* is how the Figure 6 analysis narrows the social
        media dataset down to the Tranco-10k domains. The estimator
        knobs are forwarded to :meth:`DomainTimeline.from_observations`.
        """
        wanted = set(restrict_to) if restrict_to is not None else None
        timelines = {}
        for domain, observations in by_domain.items():
            if wanted is not None and domain not in wanted:
                continue
            timelines[domain] = DomainTimeline.from_observations(
                domain,
                observations,
                interpolate=interpolate,
                fade_out_days=fade_out_days,
            )
        return cls(timelines=timelines)

    @classmethod
    def from_columnar(
        cls,
        store,
        restrict_to: Optional[Iterable[str]] = None,
        *,
        interpolate: bool = True,
        fade_out_days: int = FADE_OUT_DAYS,
    ) -> "AdoptionSeries":
        """:meth:`from_store` straight off a columnar ``CaptureStore``.

        Consumes :meth:`CaptureStore.domain_day_rows
        <repro.crawler.columnar.CaptureStore.domain_day_rows>` instead
        of the materialized ``by_domain()`` object view, skipping one
        ``Observation`` per capture. Bit-identical output (pinned by
        tests): domains arrive in the same first-capture order, rows in
        the same insertion order, so every timeline -- and the payload
        serialization order -- matches the object path exactly.
        """
        wanted = set(restrict_to) if restrict_to is not None else None
        timelines = {}
        for domain, rows in store.domain_day_rows().items():
            if wanted is not None and domain not in wanted:
                continue
            timelines[domain] = DomainTimeline.from_day_rows(
                domain,
                rows,
                interpolate=interpolate,
                fade_out_days=fade_out_days,
            )
        return cls(timelines=timelines)

    # ------------------------------------------------------------------
    # Cache serialization (repro.cache adoption artifacts)
    # ------------------------------------------------------------------
    def to_payload(self) -> list:
        """JSON-serializable payload, domain insertion order preserved.

        Insertion order matters: downstream reports iterate
        ``timelines`` directly, so a cache round-trip must reproduce it
        for bit-identical exports.
        """
        return [tl.to_record() for tl in self.timelines.values()]

    @classmethod
    def from_payload(cls, payload: list) -> "AdoptionSeries":
        """Exact inverse of :meth:`to_payload`."""
        timelines = {}
        for record in payload:
            tl = DomainTimeline.from_record(record)
            timelines[tl.domain] = tl
        return cls(timelines=timelines)

    # ------------------------------------------------------------------
    def counts_on(self, date: dt.date) -> Counter:
        """Number of domains per CMP on *date*."""
        counts: Counter = Counter()
        for tl in self.timelines.values():
            state = tl.state_on(date)
            if state is not None:
                counts[state] += 1
        return counts

    def total_on(self, date: dt.date) -> int:
        return sum(self.counts_on(date).values())

    def series(
        self, dates: Sequence[dt.date]
    ) -> List[Tuple[dt.date, Counter]]:
        """The Figure 6 series: per-date CMP counts."""
        return [(d, self.counts_on(d)) for d in dates]

class AdoptionAccumulator:
    """Incremental :class:`AdoptionSeries` construction (streaming path).

    The batch constructors (:meth:`AdoptionSeries.from_store`,
    :meth:`AdoptionSeries.from_columnar`) re-derive every timeline from
    the full capture history -- O(window) per run. This accumulator is
    the O(delta) equivalent: feed it ``(domain, date_ordinal, cmp_key)``
    rows as they arrive (insertion order, exactly as the columnar store
    appends them) and only domains touched since the last snapshot have
    their timelines rebuilt.

    Equivalence contract (pinned by the streaming property tests): after
    any prefix of a row feed, :meth:`series` is byte-identical -- same
    domain order, same ``to_payload()`` bytes -- to
    ``AdoptionSeries.from_columnar`` over a store holding the same rows.
    Domain order is first-appearance order on both paths; per-domain row
    order is feed order, so the per-day 1/3 vote and its ``Counter``
    tie-breaking see identical sequences.
    """

    def __init__(
        self,
        restrict_to: Optional[Iterable[str]] = None,
        *,
        interpolate: bool = True,
        fade_out_days: int = FADE_OUT_DAYS,
    ):
        self._wanted = set(restrict_to) if restrict_to is not None else None
        self._interpolate = interpolate
        self._fade_out_days = fade_out_days
        #: domain -> (date_ordinal, cmp_key) rows in feed order.
        self._rows: Dict[str, List[Tuple[int, Optional[str]]]] = {}
        #: domain -> cached timeline (insertion order == first-appearance
        #: order; rebuilding in place keeps a domain's position).
        self._timelines: Dict[str, DomainTimeline] = {}
        #: Domains with rows newer than their cached timeline, in
        #: first-dirtied order (a dict, not a set, so rebuild order --
        #: and therefore new-domain insertion order -- is deterministic).
        self._dirty: Dict[str, None] = {}
        self.rows_seen = 0

    def add(
        self, domain: str, date_ordinal: int, cmp_key: Optional[str]
    ) -> None:
        """Ingest one capture row (the streaming hot path)."""
        self.rows_seen += 1
        if self._wanted is not None and domain not in self._wanted:
            return
        bucket = self._rows.get(domain)
        if bucket is None:
            self._rows[domain] = [(date_ordinal, cmp_key)]
        else:
            bucket.append((date_ordinal, cmp_key))
        self._dirty[domain] = None

    def add_rows(
        self, rows: Iterable[Tuple[int, Optional[str], str]]
    ) -> None:
        """Ingest ``(date_ordinal, cmp_key, domain)`` rows in feed order."""
        for ordinal, cmp_key, domain in rows:
            self.add(domain, ordinal, cmp_key)

    def series(self) -> AdoptionSeries:
        """The adoption series over every row ingested so far.

        Rebuilds only dirty domains; untouched timelines are reused.
        The returned series owns a snapshot dict, so later ingestion
        never mutates it.
        """
        for domain in self._dirty:
            self._timelines[domain] = DomainTimeline.from_day_rows(
                domain,
                self._rows[domain],
                interpolate=self._interpolate,
                fade_out_days=self._fade_out_days,
            )
        self._dirty.clear()
        return AdoptionSeries(timelines=dict(self._timelines))

    @property
    def n_domains(self) -> int:
        return len(self._rows)


def daily_share_consistency(
    by_domain: Mapping[str, Sequence[Observation]]
) -> float:
    """Fraction of domains whose daily share of CMP captures is
    consistently below 5% or above 95% (the paper reports 99.8% --
    Section 3.5, "Subsites"). Computed on raw per-day capture mixes,
    before any interpolation."""
    consistent = 0
    total = 0
    for observations in by_domain.values():
        if not observations:
            continue
        per_day: Dict[dt.date, List[Optional[str]]] = defaultdict(list)
        for obs in observations:
            per_day[obs.date].append(obs.cmp_key)
        total += 1
        ok = True
        for states in per_day.values():
            share = sum(1 for s in states if s is not None) / len(states)
            if 0.05 < share < 0.95:
                ok = False
                break
        consistent += ok
    return consistent / total if total else 1.0


def month_starts(start: dt.date, end: dt.date) -> List[dt.date]:
    """The first day of every month in ``[start, end]`` -- the sampling
    grid used for the Figure 6 series."""
    out = []
    current = dt.date(start.year, start.month, 1)
    if current < start:
        current = _next_month(current)
    while current <= end:
        out.append(current)
        current = _next_month(current)
    return out


def _next_month(d: dt.date) -> dt.date:
    if d.month == 12:
        return dt.date(d.year + 1, 1, 1)
    return dt.date(d.year, d.month + 1, 1)
