"""``repro.obs`` -- the pipeline observability layer.

Structured measurement of the measurement pipeline itself: a labeled
metrics registry (:mod:`repro.obs.metrics`) and span-based tracing with
a deterministic JSONL export (:mod:`repro.obs.trace`), bundled behind
one :class:`Observability` handle that is threaded through the crawler,
queue, detection and analysis layers.

Two invariants the instrumentation must uphold (locked by
``tests/test_obs.py``):

* **Bit-identical results.** Instrumentation never touches RNG state or
  control flow, so a run with observability enabled produces exactly the
  same capture store as a run without.
* **Near-zero disabled cost.** Call sites receive :data:`NULL_OBS` by
  default -- shared no-op instruments and a no-op tracer -- so the hot
  path pays one no-op method call per update and allocates nothing
  (`make bench-obs` records the measured overhead).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.ioutil import PathLike
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.trace import NullTracer, Tracer

__all__ = [
    "Observability",
    "NullObservability",
    "NULL_OBS",
    "resolve_obs",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "NullTracer",
]


class Observability:
    """A metrics registry plus a tracer, passed down the pipeline."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    # Conveniences so call sites rarely need the sub-objects.
    def span(self, name: str, **attrs: object):
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: object) -> None:
        self.tracer.event(name, **attrs)

    def summary(self) -> str:
        """Human-readable digest of the run: spans then metrics."""
        parts = []
        spans = self.tracer.summary()
        if spans:
            parts.append("trace spans (count, total time):")
            parts.append(spans)
        metrics = self.metrics.summary()
        if metrics:
            parts.append("metrics:")
            parts.append(metrics)
        return "\n".join(parts)

    def write(
        self,
        metrics_out: Optional[PathLike] = None,
        trace_out: Optional[PathLike] = None,
    ) -> None:
        """Export collected data to the given JSONL paths (atomically)."""
        if metrics_out is not None:
            self.metrics.write_jsonl(metrics_out)
        if trace_out is not None:
            self.tracer.write_jsonl(trace_out)


class NullObservability(Observability):
    """The disabled backend: every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(NullMetricsRegistry(), NullTracer())  # type: ignore[arg-type]


#: Shared no-op instance; the default for every instrumented component.
NULL_OBS = NullObservability()

ObsLike = Union[Observability, None]


def resolve_obs(obs: ObsLike) -> Observability:
    """``None`` -> the shared null backend; anything else passes through."""
    return NULL_OBS if obs is None else obs
