"""Span-based tracing with a deterministic JSONL export.

A trace is a tree of *spans* (named, attributed, timed units of work)
plus point-in-time *events*. Spans nest via an explicit stack, so the
platform's hot path reads as a hierarchy::

    platform.run
      executor.derive_shards
      executor.crawl
        executor.shard (id=0) ... executor.shard (n-1)
      executor.merge

Determinism: span/event ids are assigned sequentially in start order,
and the export is ordered by id -- so for a deterministic workload the
exported *structure* (names, nesting, attributes, counts) is identical
run to run. Wall-clock durations are inherently nondeterministic; they
live in a single ``seconds`` field that ``export_records`` can omit
(``include_timing=False``) to make the export byte-identical across
runs. Per-shard work measured inside workers is attached after the fact
via :meth:`Tracer.record_span`, so tracing never has to cross a process
boundary.

:class:`NullTracer` is the disabled backend: ``span()`` returns one
shared re-entrant no-op context manager, so an uninstrumented run pays
a method call and no allocation.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional

from repro.ioutil import PathLike, atomic_write


class Span:
    """One live (or finished) span."""

    __slots__ = ("span_id", "parent_id", "name", "attrs", "seconds", "status")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Dict[str, object],
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.seconds: Optional[float] = None
        self.status = "ok"

    def set(self, **attrs: object) -> "Span":
        """Attach or update attributes (e.g. result counts on exit)."""
        self.attrs.update(attrs)
        return self


class _SpanContext:
    """Context manager that times one span on the tracer's stack."""

    __slots__ = ("_tracer", "_span", "_start")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._start = 0.0

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span.span_id)
        self._start = self._tracer._clock()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.seconds = self._tracer._clock() - self._start
        if exc_type is not None:
            self._span.status = "error"
        self._tracer._stack.pop()
        return False


class Tracer:
    """Collects spans and events for one run."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._spans: List[Span] = []
        self._events: List[dict] = []
        self._stack: List[int] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def _new_span(self, name: str, attrs: Dict[str, object]) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(self._next_id, parent, name, attrs)
        self._next_id += 1
        self._spans.append(span)
        return span

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a timed child span of the current span."""
        return _SpanContext(self, self._new_span(name, attrs))

    def record_span(
        self, name: str, seconds: float, **attrs: object
    ) -> Span:
        """Attach an already-finished span (externally timed -- e.g. a
        shard executed inside a worker) under the current span."""
        span = self._new_span(name, attrs)
        span.seconds = seconds
        return span

    def event(self, name: str, **attrs: object) -> None:
        """Record a point-in-time event under the current span."""
        parent = self._stack[-1] if self._stack else None
        self._events.append(
            {
                "kind": "event",
                "id": self._next_id,
                "parent": parent,
                "name": name,
                "attrs": attrs,
            }
        )
        self._next_id += 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_records(self, include_timing: bool = True) -> List[dict]:
        """Spans and events as dicts, ordered by id (= start order).

        With ``include_timing=False`` the nondeterministic ``seconds``
        field is dropped and the export is byte-identical for identical
        workloads.
        """
        records: List[dict] = []
        for span in self._spans:
            record: dict = {
                "kind": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "attrs": span.attrs,
                "status": span.status,
            }
            if include_timing:
                record["seconds"] = (
                    None if span.seconds is None else round(span.seconds, 6)
                )
            records.append(record)
        records.extend(self._events)
        records.sort(key=lambda r: r["id"])
        return records

    def write_jsonl(
        self, path: PathLike, include_timing: bool = True
    ) -> int:
        """Atomically export the trace as JSON Lines; returns the record
        count."""
        records = self.export_records(include_timing=include_timing)
        with atomic_write(path) as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return len(records)

    def summary(self) -> str:
        """Per-span-name aggregates, one line each, in first-seen order."""
        order: List[str] = []
        agg: Dict[str, List[float]] = {}
        for span in self._spans:
            if span.name not in agg:
                agg[span.name] = [0, 0.0]
                order.append(span.name)
            agg[span.name][0] += 1
            agg[span.name][1] += span.seconds or 0.0
        lines = []
        for name in order:
            count, seconds = agg[name]
            lines.append(f"  {name:<32} x{int(count):<5} {seconds:8.3f}s")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Null backend
# ----------------------------------------------------------------------
class _NullSpan:
    """Shared no-op span/context-manager (re-entrant, allocation-free)."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def record_span(
        self, name: str, seconds: float, **attrs: object
    ) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: object) -> None:
        pass

    def export_records(self, include_timing: bool = True) -> List[dict]:
        return []

    def write_jsonl(self, path: PathLike, include_timing: bool = True) -> int:
        return 0

    def summary(self) -> str:
        return ""
