"""Peak-RSS tracking for the observability layer.

Like the wall clock in :mod:`repro.obs.trace`, process memory is an
ambient nondeterminism source: two bit-identical runs report different
byte counts. It therefore enters the pipeline the same way the clock
does -- through one injectable seam on the allowlist of the
determinism linter (``repro/obs/memory.py`` is the sanctioned home;
everywhere else readings must come through an injected reader). The
values feed gauges and benchmark reports only, never a crawl decision
or a deterministic artifact.

Two readers:

* :class:`RusageReader` -- the OS high-water mark
  (``resource.getrusage(RUSAGE_SELF).ru_maxrss``), which is what an
  operator's memory limit actually enforces. Process-lifetime
  monotone: it never goes down, so comparing *runs* requires one
  process per run (``benchmarks/record_scale.py`` subprocesses each
  study for exactly this reason). Linux reports kilobytes, macOS
  bytes; the reader normalizes to bytes.
* :class:`TracemallocReader` -- the interpreter-side traced peak,
  resettable within a process; used by tests that need a per-phase
  budget assertion without subprocessing.
"""

from __future__ import annotations

import sys
from typing import Optional

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None  # type: ignore[assignment]

__all__ = [
    "MemoryReader",
    "RusageReader",
    "TracemallocReader",
    "default_memory_reader",
    "publish_memory_gauges",
]


class MemoryReader:
    """Interface: one method, the process peak RSS in bytes."""

    def peak_rss_bytes(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError


class RusageReader(MemoryReader):
    """The kernel's high-water resident set size for this process."""

    def peak_rss_bytes(self) -> int:
        usage = resource.getrusage(resource.RUSAGE_SELF)
        peak = usage.ru_maxrss
        # ru_maxrss is bytes on macOS, kilobytes on Linux (and most
        # other POSIX systems).
        if sys.platform == "darwin":  # pragma: no cover - mac only
            return peak
        return peak * 1024


class TracemallocReader(MemoryReader):
    """The tracemalloc traced peak (0 unless tracing is active).

    Measures interpreter allocations only -- smaller than RSS, but
    resettable (``tracemalloc.reset_peak``) and therefore usable for
    per-phase budget assertions inside one test process.
    """

    def peak_rss_bytes(self) -> int:
        import tracemalloc

        return tracemalloc.get_traced_memory()[1]


def default_memory_reader() -> Optional[MemoryReader]:
    """The best reader this platform offers (``None`` if none)."""
    if resource is not None:
        return RusageReader()
    return None  # pragma: no cover - non-POSIX


def publish_memory_gauges(
    obs, reader: Optional[MemoryReader] = None
) -> None:
    """Snapshot the process peak RSS into the obs gauges.

    Called at the end of every platform run, next to the cache and
    world-cache gauges; a no-op under the null obs backend, so the
    disabled-cost and bit-identity contracts of :mod:`repro.obs` hold.
    The *reader* parameter is the injection seam for tests.
    """
    if not obs.enabled:
        return
    if reader is None:
        reader = default_memory_reader()
        if reader is None:  # pragma: no cover - non-POSIX
            return
    gauge = obs.metrics.gauge(
        "process_peak_rss_mb",
        "high-water resident set size of this process",
    )
    gauge.set(round(reader.peak_rss_bytes() / (1024 * 1024), 2))
