"""Labeled metrics: counters, gauges, histograms.

The real platform's credibility rests on pipeline-internal numbers --
the ~40% queue skip rate (Section 3.4), per-vantage failure rates, the
capture-volume accounting behind the 161M-crawl corpus (Section 3.2).
This module is the registry those numbers flow through: call sites
register an instrument once (cheap dictionary entry) and update it on
the hot path (one dict write per update), and the registry exports a
deterministic JSONL snapshot plus a human-readable summary.

Naming convention (enforced by review, not code): snake_case
``<subsystem>_<quantity>_<unit>``, e.g. ``queue_submissions_total``,
``executor_shard_seconds``. Discrete breakdowns (dedup decision, CMP
key, crawl config) go into labels, not the metric name.

Disabled-mode cost is handled by :class:`NullMetricsRegistry`: it hands
out shared no-op instruments, so an uninstrumented run pays one no-op
method call per update and allocates nothing.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ioutil import PathLike, atomic_write

#: Histogram bucket upper bounds (seconds-flavored; "+Inf" is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base class: one named instrument holding labeled series."""

    kind = "abstract"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def records(self) -> List[dict]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, value: float = 1, **labels: object) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + value

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0)

    @property
    def total(self) -> float:
        """Sum over all labeled series."""
        return sum(self._series.values())

    def records(self) -> List[dict]:
        return [
            {
                "metric": self.name,
                "type": self.kind,
                "labels": dict(key),
                "value": value,
            }
            for key, value in sorted(self._series.items())
        ]


class Gauge(Metric):
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._series[_label_key(labels)] = value

    def value(self, **labels: object) -> Optional[float]:
        return self._series.get(_label_key(labels))

    def records(self) -> List[dict]:
        return [
            {
                "metric": self.name,
                "type": self.kind,
                "labels": dict(key),
                "value": value,
            }
            for key, value in sorted(self._series.items())
        ]


class HistogramSeries:
    """Aggregates for one labeled histogram series."""

    __slots__ = ("count", "sum", "min", "max", "bucket_counts")

    def __init__(self, n_buckets: int):
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: One slot per finite bound plus the +Inf overflow slot.
        self.bucket_counts = [0] * (n_buckets + 1)

    def observe(self, value: float, bounds: Sequence[float]) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram(Metric):
    """A distribution with fixed bucket bounds (non-cumulative counts)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._series: Dict[LabelKey, HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = HistogramSeries(len(self.buckets))
            self._series[key] = series
        series.observe(value, self.buckets)

    def series(self, **labels: object) -> Optional[HistogramSeries]:
        return self._series.get(_label_key(labels))

    def records(self) -> List[dict]:
        out = []
        for key, series in sorted(self._series.items()):
            buckets = {
                str(bound): n
                for bound, n in zip(self.buckets, series.bucket_counts)
            }
            buckets["+Inf"] = series.bucket_counts[-1]
            out.append(
                {
                    "metric": self.name,
                    "type": self.kind,
                    "labels": dict(key),
                    "count": series.count,
                    "sum": round(series.sum, 6),
                    "min": None if series.min is None else round(series.min, 6),
                    "max": None if series.max is None else round(series.max, 6),
                    "buckets": buckets,
                }
            )
        return out


class MetricsRegistry:
    """Home of all instruments; registration is idempotent by name."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # Registration (cheap; call sites keep the returned instrument)
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is None:
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
            return metric
        if not isinstance(existing, Histogram):
            raise ValueError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        return existing

    def _register(self, cls, name: str, help: str):
        existing = self._metrics.get(name)
        if existing is None:
            metric = cls(name, help)
            self._metrics[name] = metric
            return metric
        if not isinstance(existing, cls):
            raise ValueError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        return existing

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> List[dict]:
        """All series of all instruments, deterministically ordered
        (metric name, then label key) -- byte-stable given equal state."""
        records: List[dict] = []
        for name in sorted(self._metrics):
            records.extend(self._metrics[name].records())
        return records

    def write_jsonl(self, path: PathLike) -> int:
        """Atomically export the snapshot as JSON Lines; returns the
        record count."""
        records = self.snapshot()
        with atomic_write(path) as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return len(records)

    def summary(self) -> str:
        """Human-readable digest, one line per labeled series."""
        lines = []
        for record in self.snapshot():
            labels = ",".join(
                f"{k}={v}" for k, v in sorted(record["labels"].items())
            )
            name = record["metric"] + (f"{{{labels}}}" if labels else "")
            if record["type"] == "histogram":
                mean = record["sum"] / record["count"] if record["count"] else 0
                lines.append(
                    f"  {name:<52} count={record['count']} "
                    f"sum={record['sum']:.4f}s mean={mean:.4f}s"
                )
            else:
                value = record["value"]
                shown = int(value) if float(value).is_integer() else value
                lines.append(f"  {name:<52} {shown}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Null backend
# ----------------------------------------------------------------------
class NullCounter:
    __slots__ = ()
    total = 0

    def inc(self, value: float = 1, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0


class NullGauge:
    __slots__ = ()

    def set(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> None:
        return None


class NullHistogram:
    __slots__ = ()

    def observe(self, value: float, **labels: object) -> None:
        pass

    def series(self, **labels: object) -> None:
        return None


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullMetricsRegistry:
    """No-op registry: shared no-op instruments, empty exports."""

    enabled = False

    def counter(self, name: str, help: str = "") -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "") -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, help: str = "", buckets=()) -> NullHistogram:
        return _NULL_HISTOGRAM

    def get(self, name: str) -> None:
        return None

    def snapshot(self) -> List[dict]:
        return []

    def write_jsonl(self, path: PathLike) -> int:
        return 0

    def summary(self) -> str:
        return ""
