"""Reachability probing for toplist seed-URL resolution.

Section 3.2 ("Toplist-Based Web Measurement") describes how the bare
domains of the Tranco list are converted into crawlable URLs:

1. attempt a TLS connection to ``www.<domain>:443`` and validate the
   certificate hostname against Mozilla's trust store; on success use
   ``https://www.<domain>/``;
2. otherwise attempt a TCP connection to port 80 and use
   ``http://www.<domain>/``;
3. otherwise fall back to ``http://<domain>/``.

The process is repeated three times over a week to catch temporarily
unavailable domains.

This module implements that protocol against an abstract
:class:`ReachabilityOracle`, which the synthetic web implements. The retry
schedule is modelled explicitly so that transient unavailability (which the
synthetic world can inject) is genuinely recovered from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

from repro.faults.schedule import FaultSchedule
from repro.net.url import URL

#: Vantage label under which probe faults are scheduled (probing has no
#: crawl vantage; DNS/TLS faults strike the resolver itself).
PROBE_VANTAGE = "probe"


class ReachabilityOracle(Protocol):
    """What the prober needs to know about the network.

    ``attempt`` is a monotonically increasing retry counter so that
    implementations can model *temporary* unavailability.
    """

    def tls_ok(self, host: str, attempt: int) -> bool:
        """True if a TLS connection to ``host:443`` succeeds with a
        certificate that validates for *host*."""
        ...

    def tcp80_ok(self, host: str, attempt: int) -> bool:
        """True if a TCP connection to ``host:80`` succeeds."""
        ...


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of resolving one toplist domain to a seed URL."""

    domain: str
    seed_url: Optional[URL]
    #: 1-based attempt on which the resolution succeeded, 0 if never.
    succeeded_on_attempt: int
    #: Which rule produced the seed: "https-www", "http-www", "http-bare"
    #: or "unreachable".
    method: str

    @property
    def reachable(self) -> bool:
        return self.seed_url is not None


def resolve_seed_url(
    domain: str,
    oracle: ReachabilityOracle,
    attempts: int = 3,
    faults: Optional[FaultSchedule] = None,
) -> ProbeResult:
    """Resolve one domain to a seed URL using the paper's protocol.

    An injected fault (scheduled against the :data:`PROBE_VANTAGE`
    label) burns one of the *attempts* without querying the oracle at
    all -- the resolver never got an answer. Crucially the oracle's own
    attempt counter advances only on fault-free tries, so a faulted run
    queries a strict *prefix* of the fault-free oracle sequence: a
    domain either resolves with the identical seed URL and method, or
    (if faults consume too much of the budget) is conservatively lost as
    unreachable. Faults can shrink the probe result, never change it.
    """
    www = f"www.{domain}"
    oracle_attempt = 0
    for try_no in range(1, attempts + 1):
        if (
            faults is not None
            and faults.fault_for(domain, PROBE_VANTAGE, try_no - 1)
            is not None
        ):
            continue
        oracle_attempt += 1
        if oracle.tls_ok(www, oracle_attempt):
            return ProbeResult(
                domain, URL.parse(f"https://{www}/"), try_no, "https-www"
            )
        if oracle.tcp80_ok(www, oracle_attempt):
            return ProbeResult(
                domain, URL.parse(f"http://{www}/"), try_no, "http-www"
            )
        if oracle.tcp80_ok(domain, oracle_attempt) or oracle.tls_ok(
            domain, oracle_attempt
        ):
            return ProbeResult(
                domain, URL.parse(f"http://{domain}/"), try_no, "http-bare"
            )
    return ProbeResult(domain, None, 0, "unreachable")


def resolve_toplist(
    domains: Sequence[str],
    oracle: ReachabilityOracle,
    attempts: int = 3,
    faults: Optional[FaultSchedule] = None,
) -> "list[ProbeResult]":
    """Resolve every domain in a toplist to a seed URL."""
    return [resolve_seed_url(d, oracle, attempts, faults) for d in domains]


# ----------------------------------------------------------------------
# Cache serialization (repro.cache toplist-probes artifacts)
# ----------------------------------------------------------------------
def probe_to_record(probe: ProbeResult) -> dict:
    """One probe result as a JSON-serializable dict."""
    return {
        "domain": probe.domain,
        "seed_url": None if probe.seed_url is None else str(probe.seed_url),
        "attempt": probe.succeeded_on_attempt,
        "method": probe.method,
    }


def probe_from_record(record: dict) -> ProbeResult:
    """Rebuild a probe result; exact inverse of :func:`probe_to_record`
    (``URL.parse`` canonicalization is idempotent, so the seed URL
    round-trips bit-identically)."""
    seed_url = record["seed_url"]
    return ProbeResult(
        domain=record["domain"],
        seed_url=None if seed_url is None else URL.parse(seed_url),
        succeeded_on_attempt=record["attempt"],
        method=record["method"],
    )
