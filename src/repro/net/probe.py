"""Reachability probing for toplist seed-URL resolution.

Section 3.2 ("Toplist-Based Web Measurement") describes how the bare
domains of the Tranco list are converted into crawlable URLs:

1. attempt a TLS connection to ``www.<domain>:443`` and validate the
   certificate hostname against Mozilla's trust store; on success use
   ``https://www.<domain>/``;
2. otherwise attempt a TCP connection to port 80 and use
   ``http://www.<domain>/``;
3. otherwise fall back to ``http://<domain>/``.

The process is repeated three times over a week to catch temporarily
unavailable domains.

This module implements that protocol against an abstract
:class:`ReachabilityOracle`, which the synthetic web implements. The retry
schedule is modelled explicitly so that transient unavailability (which the
synthetic world can inject) is genuinely recovered from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

from repro.net.url import URL


class ReachabilityOracle(Protocol):
    """What the prober needs to know about the network.

    ``attempt`` is a monotonically increasing retry counter so that
    implementations can model *temporary* unavailability.
    """

    def tls_ok(self, host: str, attempt: int) -> bool:
        """True if a TLS connection to ``host:443`` succeeds with a
        certificate that validates for *host*."""
        ...

    def tcp80_ok(self, host: str, attempt: int) -> bool:
        """True if a TCP connection to ``host:80`` succeeds."""
        ...


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of resolving one toplist domain to a seed URL."""

    domain: str
    seed_url: Optional[URL]
    #: 1-based attempt on which the resolution succeeded, 0 if never.
    succeeded_on_attempt: int
    #: Which rule produced the seed: "https-www", "http-www", "http-bare"
    #: or "unreachable".
    method: str

    @property
    def reachable(self) -> bool:
        return self.seed_url is not None


def resolve_seed_url(
    domain: str, oracle: ReachabilityOracle, attempts: int = 3
) -> ProbeResult:
    """Resolve one domain to a seed URL using the paper's protocol."""
    www = f"www.{domain}"
    for attempt in range(1, attempts + 1):
        if oracle.tls_ok(www, attempt):
            return ProbeResult(
                domain, URL.parse(f"https://{www}/"), attempt, "https-www"
            )
        if oracle.tcp80_ok(www, attempt):
            return ProbeResult(
                domain, URL.parse(f"http://{www}/"), attempt, "http-www"
            )
        if oracle.tcp80_ok(domain, attempt) or oracle.tls_ok(domain, attempt):
            return ProbeResult(
                domain, URL.parse(f"http://{domain}/"), attempt, "http-bare"
            )
    return ProbeResult(domain, None, 0, "unreachable")


def resolve_toplist(
    domains: Sequence[str], oracle: ReachabilityOracle, attempts: int = 3
) -> "list[ProbeResult]":
    """Resolve every domain in a toplist to a seed URL."""
    return [resolve_seed_url(d, oracle, attempts) for d in domains]
