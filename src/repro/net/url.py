"""URL parsing and canonicalization.

A small, dependency-free URL implementation covering everything the crawler
and the analyses need: parsing absolute URLs, canonicalizing them the way a
browser address bar would (lower-cased scheme and host, default ports
stripped, empty path normalized to ``/``), and resolving relative
references against a base URL.

The implementation deliberately rejects exotic inputs (userinfo, IPv6
literals with zone ids, non-http schemes other than a small allowlist)
instead of guessing, because every URL in this system is produced by our
own synthetic web or by the seed streams, both of which stick to the
common subset.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass, field, replace
from functools import cached_property, lru_cache
from typing import Optional, Tuple

_SCHEME_RE = re.compile(r"^([a-zA-Z][a-zA-Z0-9+.-]*):")
_HOST_RE = re.compile(r"^[a-z0-9]([a-z0-9._-]*[a-z0-9])?$")

#: Schemes the crawler is willing to fetch.
FETCHABLE_SCHEMES = ("http", "https")

#: Upper bound of the ``URL.parse`` memoization cache. Bounded (LRU) on
#: purpose: multi-million-URL crawls see mostly-unique share URLs, and
#: an unbounded cache would grow with the workload instead of with the
#: working set (the shortener and CMP asset URLs that actually recur).
#: Hit/size are exported as the ``net_cache_*`` obs gauges via
#: :func:`parse_cache_info`.
PARSE_CACHE_SIZE = 8_192

#: Default ports per scheme; these are stripped during canonicalization.
DEFAULT_PORTS = {"http": 80, "https": 443}


class UrlError(ValueError):
    """Raised when a string cannot be parsed as a supported URL."""


@dataclass(frozen=True, order=True)
class URL:
    """An absolute, canonicalized URL.

    Instances are immutable and hashable, so they can be used as dictionary
    keys in the capture queue's deduplication maps.

    Attributes:
        scheme: ``http`` or ``https``.
        host: lower-cased hostname, no trailing dot.
        port: explicit port, or ``None`` when the scheme default applies.
        path: absolute path, always starting with ``/``.
        query: query string without the leading ``?``, or ``""``.
        fragment: fragment without the leading ``#``, or ``""``.
    """

    scheme: str
    host: str
    port: Optional[int] = None
    path: str = "/"
    query: str = ""
    fragment: str = field(default="", compare=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, raw: str) -> "URL":
        """Parse an absolute URL string (memoized).

        Crawl workloads parse the same strings over and over -- the
        shortener and CMP asset URLs rebuilt for every page render --
        so results are cached. URLs are immutable, which makes sharing
        the parsed instances safe.

        Raises:
            UrlError: if *raw* is relative, uses an unsupported scheme, or
                has a malformed authority component.
        """
        if not isinstance(raw, str):
            raise UrlError(f"expected str, got {type(raw).__name__}")
        return _parse_url(raw.strip())

    @classmethod
    def _parse_uncached(cls, raw: str) -> "URL":
        m = _SCHEME_RE.match(raw)
        if not m:
            raise UrlError(f"not an absolute URL: {raw!r}")
        scheme = m.group(1).lower()
        if scheme not in FETCHABLE_SCHEMES:
            raise UrlError(f"unsupported scheme {scheme!r} in {raw!r}")
        rest = raw[m.end():]
        if not rest.startswith("//"):
            raise UrlError(f"missing authority in {raw!r}")
        rest = rest[2:]

        # Split off fragment, then query, then path.
        rest, _, fragment = rest.partition("#")
        rest, _, query = rest.partition("?")
        authority, slash, path = rest.partition("/")
        path = slash + path if slash else "/"

        if "@" in authority:
            raise UrlError(f"userinfo not supported: {raw!r}")
        host, port = cls._split_host_port(authority, raw)
        if DEFAULT_PORTS.get(scheme) == port:
            port = None
        return cls(
            scheme=scheme,
            host=host,
            port=port,
            path=_normalize_path(path),
            query=query,
            fragment=fragment,
        )

    @staticmethod
    def _split_host_port(authority: str, raw: str) -> Tuple[str, Optional[int]]:
        host, colon, port_s = authority.partition(":")
        host = host.lower().rstrip(".")
        if not host or not _HOST_RE.match(host):
            raise UrlError(f"malformed host {host!r} in {raw!r}")
        if not colon:
            return host, None
        if not port_s.isdigit():
            raise UrlError(f"malformed port {port_s!r} in {raw!r}")
        port = int(port_s)
        if not 1 <= port <= 65535:
            raise UrlError(f"port out of range in {raw!r}")
        return host, port

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def origin(self) -> str:
        """The URL's origin, e.g. ``https://example.com``."""
        if self.port is not None:
            return f"{self.scheme}://{self.host}:{self.port}"
        return f"{self.scheme}://{self.host}"

    @property
    def effective_port(self) -> int:
        """The port actually used on the wire."""
        return self.port if self.port is not None else DEFAULT_PORTS[self.scheme]

    @property
    def is_landing_page(self) -> bool:
        """True if this URL points at a site's front page."""
        return self.path == "/" and not self.query

    def without_fragment(self) -> "URL":
        """Return the same URL with the fragment removed."""
        if not self.fragment:
            return self
        return replace(self, fragment="")

    def with_path(self, path: str, query: str = "") -> "URL":
        """Return a copy of this URL pointing at *path* (and *query*)."""
        return replace(self, path=_normalize_path(path), query=query, fragment="")

    def with_host(self, host: str) -> "URL":
        """Return a copy of this URL on a different host."""
        host = host.lower().rstrip(".")
        if not _HOST_RE.match(host):
            raise UrlError(f"malformed host {host!r}")
        return replace(self, host=host)

    def sibling(self, scheme: str) -> "URL":
        """Return the same URL under a different scheme."""
        if scheme not in FETCHABLE_SCHEMES:
            raise UrlError(f"unsupported scheme {scheme!r}")
        return replace(self, scheme=scheme, port=None)

    def resolve(self, reference: str) -> "URL":
        """Resolve a (possibly relative) reference against this URL.

        Supports the reference forms that occur in practice on the
        synthetic web: absolute URLs, scheme-relative (``//host/...``),
        absolute-path (``/foo``) and relative-path (``foo/bar``)
        references.
        """
        reference = reference.strip()
        if not reference:
            return self.without_fragment()
        if _SCHEME_RE.match(reference):
            return URL.parse(reference)
        if reference.startswith("//"):
            return URL.parse(f"{self.scheme}:{reference}")
        if reference.startswith("#"):
            return replace(self, fragment=reference[1:])
        ref_path, _, query = reference.partition("?")
        query, _, fragment = query.partition("#")
        if ref_path.startswith("/"):
            path = ref_path
        else:
            base_dir = self.path.rsplit("/", 1)[0]
            path = f"{base_dir}/{ref_path}"
        return replace(
            self, path=_normalize_path(path), query=query, fragment=fragment
        )

    def __str__(self) -> str:
        # Memoized: the crawl hot path stringifies every URL several
        # times (visit keys, queue logs). The cache bypasses the frozen
        # guard by writing to __dict__ directly; equality ignores it.
        s = self.__dict__.get("_str")
        if s is None:
            s = f"{self.origin}{self.path}"
            if self.query:
                s += f"?{self.query}"
            if self.fragment:
                s += f"#{self.fragment}"
            self.__dict__["_str"] = s
        return s

    def __hash__(self) -> int:
        # Memoized with the same field tuple the generated dataclass
        # hash would use (fragment is compare=False and excluded); URLs
        # key the capture queue's dedup maps, so this runs per event.
        h = self.__dict__.get("_hash")
        if h is None:
            # Process-local dict keying only (mirrors the hash the
            # dataclass would generate); never persisted or compared
            # across processes, so the per-process salt is fine.
            h = hash(  # repro-lint: disable=DET003
                (self.scheme, self.host, self.port, self.path, self.query)
            )
            self.__dict__["_hash"] = h
        return h

    @cached_property
    def h64(self) -> int:
        """This URL's :func:`repro.det.key64` part, precomputed.

        Exactly the value ``key64`` derives for ``str(self)``, so
        ``key64(..., url.h64, ...)`` equals ``key64(..., str(url), ...)``
        while skipping the string encode/CRC on every use.
        """
        s = str(self)
        return zlib.crc32(s.encode("utf-8")) ^ (len(s) << 32)


@lru_cache(maxsize=PARSE_CACHE_SIZE)
def _parse_url(raw: str) -> URL:
    return URL._parse_uncached(raw)


def parse_cache_info():
    """Hit/miss/size statistics of the ``URL.parse`` memoization cache.

    Note the cache is per-process: workers of the ``process`` executor
    backend each warm their own (module state never pickles across), so
    a sharded run reports the parent process's cache only.
    """
    return _parse_url.cache_info()


def _normalize_path(path: str) -> str:
    """Collapse ``.``/``..`` segments and duplicate slashes in *path*."""
    if not path.startswith("/"):
        path = "/" + path
    segments = path.split("/")
    out: list = []
    for seg in segments[1:]:
        if seg in ("", ".") and seg != segments[-1]:
            continue
        if seg == ".":
            seg = ""
        if seg == "..":
            if out:
                out.pop()
            continue
        out.append(seg)
    normalized = "/" + "/".join(out)
    return normalized or "/"
