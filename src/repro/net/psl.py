"""Public Suffix List (PSL) lookup.

The paper normalizes every captured hostname to its *effective second-level
domain* (also called eTLD+1 or "registrable domain") using Mozilla's Public
Suffix List, so that ``foo.example.github.io`` is counted as
``example.github.io`` and ``shop.example.co.uk`` as ``example.co.uk``
(Section 3.2).

This module implements the PSL matching algorithm from
https://publicsuffix.org/list/ -- including wildcard rules (``*.ck``) and
exception rules (``!www.ck``) -- against a bundled snapshot of rules in
:mod:`repro.datasets`. The snapshot covers every suffix the synthetic web
generator emits plus the common real-world suffixes, so the lookup code
path is identical to one backed by the full list.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Optional, Tuple


class PublicSuffixList:
    """A compiled Public Suffix List.

    Args:
        rules: iterable of rule lines in PSL syntax. Comment lines
            (``// ...``) and blank lines are ignored.
    """

    #: Cached lookups per instance; sized for crawl workloads, where the
    #: same third-party and toplist hosts recur millions of times.
    CACHE_SIZE = 65_536

    def __init__(self, rules: Iterable[str]):
        self._exact: set = set()
        self._wildcard: set = set()  # rule "*.ck" stored as "ck"
        self._exception: set = set()  # rule "!www.ck" stored as "www.ck"
        for line in rules:
            line = line.strip().lower()
            if not line or line.startswith("//"):
                continue
            if line.startswith("!"):
                self._exception.add(line[1:])
            elif line.startswith("*."):
                self._wildcard.add(line[2:])
            else:
                self._exact.add(line)
        if not self._exact and not self._wildcard:
            raise ValueError("empty public suffix list")
        self._install_caches()

    def _install_caches(self) -> None:
        # Per-instance memoization keeps the caches with the rule set
        # they were computed from (and lets them die with the instance).
        self._suffix_cached = lru_cache(maxsize=self.CACHE_SIZE)(
            self._public_suffix_uncached
        )
        self._registrable_cached = lru_cache(maxsize=self.CACHE_SIZE)(
            self._registrable_domain_uncached
        )

    # ------------------------------------------------------------------
    # Pickling: the lru_cache wrappers close over bound methods and are
    # not picklable, which used to make any object graph holding a PSL
    # (e.g. payloads shipped to the process executor backend) fail to
    # serialize. The caches are dropped on pickle and rebuilt cold on
    # unpickle -- memoized state is per-process by design.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_suffix_cached"]
        del state["_registrable_cached"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._install_caches()

    def cache_info(self) -> dict:
        """Per-cache hit/miss/size statistics (for the obs gauges)."""
        return {
            "suffix": self._suffix_cached.cache_info(),
            "registrable": self._registrable_cached.cache_info(),
        }

    def __len__(self) -> int:
        return len(self._exact) + len(self._wildcard) + len(self._exception)

    # ------------------------------------------------------------------
    def public_suffix(self, host: str) -> str:
        """Return the public suffix of *host* (memoized).

        Follows the PSL algorithm: the longest matching rule wins,
        exception rules beat wildcard rules, and if no rule matches the
        suffix is the last label (the "``*``" implicit rule).
        """
        return self._suffix_cached(host)

    def _public_suffix_uncached(self, host: str) -> str:
        labels = _labels(host)
        suffix_len = 1  # implicit "*" rule
        for i in range(len(labels)):
            candidate = ".".join(labels[i:])
            rest = ".".join(labels[i + 1:])
            if candidate in self._exception:
                # Exception rules mark the registrable domain itself, so
                # the public suffix is one label shorter.
                suffix_len = max(suffix_len, len(labels) - i - 1)
                break
            if candidate in self._exact:
                suffix_len = max(suffix_len, len(labels) - i)
            if rest and rest in self._wildcard:
                suffix_len = max(suffix_len, len(labels) - i)
        return ".".join(labels[-suffix_len:])

    def registrable_domain(self, host: str) -> Optional[str]:
        """Return the eTLD+1 for *host*, or ``None`` for bare suffixes
        (memoized).

        This is the paper's unit of counting: the "effective second-level
        domain" under which internet users can directly register names.

        >>> default_psl().registrable_domain("foo.example.github.io")
        'example.github.io'
        >>> default_psl().registrable_domain("github.io") is None
        True
        """
        return self._registrable_cached(host)

    def _registrable_domain_uncached(self, host: str) -> Optional[str]:
        labels = _labels(host)
        suffix = self.public_suffix(host)
        n_suffix = suffix.count(".") + 1
        if len(labels) <= n_suffix:
            return None
        return ".".join(labels[-(n_suffix + 1):])

    def split(self, host: str) -> Tuple[str, str]:
        """Split *host* into ``(prefix, registrable_domain)``.

        The prefix is everything left of the registrable domain (without a
        trailing dot), or ``""``. For bare public suffixes the whole host
        is returned as the registrable part, mirroring how the crawler
        treats infrastructure domains.
        """
        reg = self.registrable_domain(host)
        if reg is None:
            return "", host.lower().rstrip(".")
        prefix = host.lower().rstrip(".")[: -(len(reg) + 1)]
        return prefix, reg

    def is_public_suffix(self, host: str) -> bool:
        """True if *host* itself is a public suffix (e.g. ``co.uk``)."""
        return self.registrable_domain(host) is None


def _labels(host: str) -> list:
    host = host.strip().lower().rstrip(".")
    if not host:
        raise ValueError("empty hostname")
    labels = host.split(".")
    if any(not lbl for lbl in labels):
        raise ValueError(f"malformed hostname {host!r}")
    return labels


@lru_cache(maxsize=1)
def default_psl() -> PublicSuffixList:
    """Return the PSL compiled from the bundled snapshot (cached)."""
    from repro.datasets import load_psl_snapshot

    return PublicSuffixList(load_psl_snapshot())
