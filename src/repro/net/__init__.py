"""Low-level network substrate.

This package provides the networking primitives that the rest of the
reproduction is built on:

* :mod:`repro.net.url` -- URL parsing, normalization and resolution,
  tailored to the needs of a web crawler (scheme/host canonicalization,
  default-port stripping, relative reference resolution).
* :mod:`repro.net.psl` -- a Public Suffix List implementation used to
  normalize hostnames to their *effective second-level domain* (eTLD+1),
  which is the unit the paper counts CMP adoption by (Section 3.2).
* :mod:`repro.net.http` -- immutable HTTP request/response/cookie models
  matching the fields Netograph records for every capture.
* :mod:`repro.net.probe` -- the TLS/TCP reachability probe used to turn a
  toplist of bare domains into crawlable seed URLs (Section 3.2,
  "Toplist-Based Web Measurement").
"""

from repro.net.http import Cookie, HttpRequest, HttpResponse, HttpTransaction
from repro.net.psl import PublicSuffixList, default_psl
from repro.net.url import URL, UrlError, parse_cache_info

__all__ = [
    "URL",
    "UrlError",
    "PublicSuffixList",
    "default_psl",
    "Cookie",
    "HttpRequest",
    "HttpResponse",
    "HttpTransaction",
    "publish_cache_gauges",
]


def publish_cache_gauges(obs) -> None:
    """Snapshot the net-layer memoization caches into obs gauges.

    Point-in-time hits and entry counts of the bounded ``URL.parse``
    cache and the per-instance PSL caches -- the knobs that decide
    whether a multi-million-URL run stays memoized or thrashes. Called
    at the end of every platform/toplist run; a no-op under the null
    obs backend. The caches are per-process, so sharded ``process``
    runs report the parent's caches only.
    """
    if not obs.enabled:
        return
    hits = obs.metrics.gauge(
        "net_cache_hits", "memoization hits in the net layer, by cache"
    )
    entries = obs.metrics.gauge(
        "net_cache_entries", "memoized entries in the net layer, by cache"
    )
    info = parse_cache_info()
    hits.set(info.hits, cache="url_parse")
    entries.set(info.currsize, cache="url_parse")
    for name, psl_info in sorted(default_psl().cache_info().items()):
        hits.set(psl_info.hits, cache=f"psl_{name}")
        entries.set(psl_info.currsize, cache=f"psl_{name}")
