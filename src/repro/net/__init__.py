"""Low-level network substrate.

This package provides the networking primitives that the rest of the
reproduction is built on:

* :mod:`repro.net.url` -- URL parsing, normalization and resolution,
  tailored to the needs of a web crawler (scheme/host canonicalization,
  default-port stripping, relative reference resolution).
* :mod:`repro.net.psl` -- a Public Suffix List implementation used to
  normalize hostnames to their *effective second-level domain* (eTLD+1),
  which is the unit the paper counts CMP adoption by (Section 3.2).
* :mod:`repro.net.http` -- immutable HTTP request/response/cookie models
  matching the fields Netograph records for every capture.
* :mod:`repro.net.probe` -- the TLS/TCP reachability probe used to turn a
  toplist of bare domains into crawlable seed URLs (Section 3.2,
  "Toplist-Based Web Measurement").
"""

from repro.net.http import Cookie, HttpRequest, HttpResponse, HttpTransaction
from repro.net.psl import PublicSuffixList, default_psl
from repro.net.url import URL, UrlError

__all__ = [
    "URL",
    "UrlError",
    "PublicSuffixList",
    "default_psl",
    "Cookie",
    "HttpRequest",
    "HttpResponse",
    "HttpTransaction",
]
