"""HTTP request/response/cookie models.

These are the on-the-wire artefacts Netograph records for every capture
(Section 3.2): request and response headers, connection metadata, cookies
and the sizes needed for the data-transfer accounting in Figure 9.

The models are immutable value objects. A :class:`HttpTransaction` pairs a
request with its response and carries timing information relative to the
start of the page load, which the detection engine and the opt-out
waterfall analysis both consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.net.url import URL

#: Resource types the (simulated) browser distinguishes; mirrors Chrome's
#: ``ResourceType`` values that matter for CMP detection.
RESOURCE_TYPES = (
    "document",
    "script",
    "stylesheet",
    "image",
    "xhr",
    "font",
    "other",
)


@dataclass(frozen=True)
class Cookie:
    """A cookie as stored by the browser after a page visit."""

    name: str
    value: str
    domain: str
    path: str = "/"
    secure: bool = False
    http_only: bool = False
    same_site: str = "Lax"
    #: Lifetime in seconds; ``None`` means a session cookie.
    max_age: Optional[int] = None

    @property
    def is_persistent(self) -> bool:
        return self.max_age is not None

    def matches_domain(self, host: str) -> bool:
        """Domain-match per RFC 6265 section 5.1.3."""
        host = host.lower()
        domain = self.domain.lstrip(".").lower()
        return host == domain or host.endswith("." + domain)


@dataclass(frozen=True)
class HttpRequest:
    """An HTTP request issued during a page load."""

    url: URL
    method: str = "GET"
    resource_type: str = "other"
    headers: Mapping[str, str] = field(default_factory=dict)
    body_size: int = 0

    def __post_init__(self) -> None:
        if self.resource_type not in RESOURCE_TYPES:
            raise ValueError(f"unknown resource type {self.resource_type!r}")

    @property
    def host(self) -> str:
        return self.url.host


@dataclass(frozen=True)
class HttpResponse:
    """The response to an :class:`HttpRequest`."""

    status: int
    headers: Mapping[str, str] = field(default_factory=dict)
    #: Compressed (on-the-wire) body size in bytes.
    body_size: int = 0
    #: Uncompressed body size in bytes; defaults to the wire size.
    body_size_uncompressed: Optional[int] = None
    #: Server IP the connection was made to (connection metadata).
    remote_ip: str = ""
    #: Leaf certificate subject, empty for plain HTTP.
    tls_subject: str = ""

    @property
    def uncompressed_size(self) -> int:
        if self.body_size_uncompressed is None:
            return self.body_size
        return self.body_size_uncompressed

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307, 308)

    @property
    def location(self) -> Optional[str]:
        for key, value in self.headers.items():
            if key.lower() == "location":
                return value
        return None


@dataclass(frozen=True)
class HttpTransaction:
    """A request/response pair with page-relative timing.

    Attributes:
        request: the request issued.
        response: the response received, or ``None`` if the request
            failed (DNS error, connection reset, crawler timeout).
        started_at: seconds since navigation start when the request was
            issued.
        duration: seconds from request start to response completion.
    """

    request: HttpRequest
    response: Optional[HttpResponse]
    started_at: float = 0.0
    duration: float = 0.0

    @property
    def finished_at(self) -> float:
        return self.started_at + self.duration

    @property
    def failed(self) -> bool:
        return self.response is None

    @property
    def wire_bytes(self) -> int:
        """Total bytes transferred on the wire for this transaction."""
        n = self.request.body_size
        if self.response is not None:
            n += self.response.body_size
        return n

    @property
    def uncompressed_bytes(self) -> int:
        n = self.request.body_size
        if self.response is not None:
            n += self.response.uncompressed_size
        return n


def follow_redirects(
    transactions: Tuple[HttpTransaction, ...], start: URL, limit: int = 20
) -> URL:
    """Compute the final address-bar URL after following redirects.

    Walks document-type transactions starting at *start* and follows
    ``Location`` headers until a non-redirect response is reached. This is
    how the crawler determines the "final website address as it would be
    shown in the browser's address bar" (Section 3.2), from which the
    effective second-level domain is extracted.
    """
    by_url = {}
    for tx in transactions:
        if tx.request.resource_type == "document":
            by_url.setdefault(tx.request.url.without_fragment(), tx)
    current = start.without_fragment()
    for _ in range(limit):
        tx = by_url.get(current)
        if tx is None or tx.response is None or not tx.response.is_redirect:
            return current
        location = tx.response.location
        if location is None:
            return current
        current = current.resolve(location).without_fragment()
    return current
