"""Seeded fault schedules.

A :class:`FaultSchedule` answers one question deterministically: *is
this crawl attempt faulted, and how?* The decision is keyed on
``(schedule seed, fault kind, domain, vantage)`` -- whether a given
``(domain, vantage)`` is afflicted by a spec -- plus the attempt number,
which turns afflictions into transient (first ``attempts`` tries fail)
or permanent (every try fails) faults. Like every other source of
randomness in the pipeline, the decision is independent of execution
order, so fault injection composes with the sharded executor without
breaking its determinism contract.

Worker crashes are scheduled the same way, keyed on
``(seed, shard_id, shard attempt)``: an afflicted shard raises
:class:`repro.faults.inject.WorkerCrash` before a scheduled task index,
carrying a checkpoint the executor resumes from.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from dataclasses import dataclass
from typing import Optional, Tuple

#: The transient failure classes of the live web that shaped the
#: paper's captures (Sections 3.2 and 3.5).
FAULT_KINDS = (
    "dns-error",
    "connection-reset",
    "slow-response",
    "antibot-challenge",
)


@dataclass(frozen=True)
class Fault:
    """One injected fault occurrence."""

    kind: str


@dataclass(frozen=True)
class FaultSpec:
    """One class of fault and how often/long it strikes.

    ``rate`` is the fraction of ``(domain, vantage)`` keys afflicted;
    an afflicted key fails its first ``attempts`` tries (transient) or
    every try (``persistent=True``).
    """

    kind: str
    rate: float
    #: Leading attempts that fail for an afflicted key (ignored when
    #: ``persistent``).
    attempts: int = 1
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")


@dataclass(frozen=True)
class CrashSpec:
    """How often shard workers die mid-shard.

    ``rate`` is the fraction of shards afflicted; an afflicted shard
    crashes on its first ``attempts`` executions (so the default of 1
    models a transient crash that a single resume recovers from).
    """

    rate: float
    attempts: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic plan of faults for one chaos run.

    Frozen and built from primitives only, so it crosses process
    boundaries inside shard tasks unchanged.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()
    crash: Optional[CrashSpec] = None

    @property
    def transient_only(self) -> bool:
        """True if every scheduled fault is recoverable by retrying."""
        return not any(spec.persistent for spec in self.specs)

    def digest(self) -> str:
        """Content digest of the whole schedule (hex SHA-256).

        Used as a cache fingerprint field (:mod:`repro.cache`): two
        schedules injecting the same faults share a digest, so a cached
        crawl is reused exactly when its chaos plan is unchanged.
        """
        payload = {
            "seed": self.seed,
            "specs": [dataclasses.asdict(spec) for spec in self.specs],
            "crash": (
                dataclasses.asdict(self.crash)
                if self.crash is not None
                else None
            ),
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()

    def fault_for(
        self, domain: str, vantage: str, attempt: int
    ) -> Optional[Fault]:
        """The fault injected into try *attempt* (0-based) of a crawl of
        *domain* from *vantage*, or ``None``.

        Specs are consulted in declaration order; the first afflicted
        one wins, so overlapping specs stay deterministic.
        """
        for spec in self.specs:
            rng = random.Random(
                f"{self.seed}:fault:{spec.kind}:{domain}:{vantage}"
            )
            if rng.random() >= spec.rate:
                continue
            if spec.persistent or attempt < spec.attempts:
                return Fault(spec.kind)
        return None

    def crash_point(
        self, shard_id: int, n_tasks: int, attempt: int
    ) -> Optional[int]:
        """The task index before which shard *shard_id* crashes on its
        *attempt*-th execution (0-based), or ``None``.

        The afflicted-or-not draw is keyed on the shard alone so a shard
        either crashes or not regardless of resume history; the crash
        position is re-drawn per attempt so a resumed shard that crashes
        again does so at a fresh point.
        """
        if self.crash is None or n_tasks <= 0:
            return None
        if attempt >= self.crash.attempts:
            return None
        rng = random.Random(f"{self.seed}:crash:{shard_id}")
        if rng.random() >= self.crash.rate:
            return None
        point_rng = random.Random(f"{self.seed}:crash:{shard_id}:{attempt}")
        return point_rng.randrange(n_tasks)
