"""``repro.faults`` -- deterministic fault injection for the crawl pipeline.

The paper's measurement substrate was the hostile live web: DNS
failures, connection resets, anti-bot CDNs and "relatively aggressive
timeouts" (Section 3.2) all shaped what Netograph could capture. This
package reproduces that hostility *deterministically*, so the pipeline's
recovery machinery can be exercised by tests that never flake:

* :class:`FaultSchedule` -- a seeded schedule of transient/permanent
  faults keyed on ``(seed, domain, vantage, attempt)``, consistent with
  the executor's per-event RNG discipline: whether a crawl attempt is
  faulted never depends on how many crawls ran before it.
* :class:`RetryPolicy` -- capped exponential backoff with seeded
  deterministic jitter. Delays are computed, never slept: waiting goes
  through an injectable :class:`Clock` (the default
  :class:`VirtualClock` only accumulates, so tests finish instantly).
* :class:`FaultTally` -- the Section 3.4-style accounting of faults
  injected, retries attempted and retries exhausted, merged shard-wise
  exactly like capture counts.
* :class:`WorkerCrash` -- the checkpoint-carrying exception a shard
  function raises when the schedule kills its worker mid-shard; the
  executor resumes the shard from the checkpoint.

Two invariants (locked by ``tests/test_chaos_invariants.py``):

* **No schedule, no change.** With the module wired in but no schedule
  active, results are bit-identical to a build without it.
* **Transient faults are free.** Under any transient-only schedule with
  enough retries, final crawl results equal the fault-free run exactly;
  under permanent faults the pipeline degrades conservatively
  (undercounts, never invents CMP presence).
"""

from __future__ import annotations

from repro.faults.clock import Clock, SystemClock, VirtualClock
from repro.faults.inject import FaultTally, WorkerCrash, run_with_retries
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    FAULT_KINDS,
    CrashSpec,
    Fault,
    FaultSchedule,
    FaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "Clock",
    "CrashSpec",
    "Fault",
    "FaultSchedule",
    "FaultSpec",
    "FaultTally",
    "RetryPolicy",
    "SystemClock",
    "VirtualClock",
    "WorkerCrash",
    "run_with_retries",
]
