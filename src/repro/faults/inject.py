"""Fault accounting and the generic retry loop.

:class:`FaultTally` is the faults counterpart of
:class:`repro.crawler.queue.QueueStats`: every injected fault, retry and
exhaustion is counted so chaos runs conserve the Section 3.4 accounting
-- a crawl whose retries are exhausted is still recorded (as a failed
capture) and surfaces under an explicit skip-style reason instead of
disappearing. Tallies merge shard-wise exactly like capture counts.

:func:`run_with_retries` is the one retry loop used by the crawl paths:
attempt, check for an injected fault, back off through the injectable
clock, attempt again. It is generic over the result type so the probe,
browser and shard layers share identical retry semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.faults.clock import Clock
from repro.faults.retry import RetryPolicy

#: The skip-reason label under which retry exhaustion is reported,
#: alongside the queue's ``skipped_domain``/``skipped_url`` reasons.
EXHAUSTED_REASON = "retries_exhausted"


@dataclass
class FaultTally:
    """Counters over one run's injected faults and retries."""

    #: Fault occurrences by kind (one occurrence per faulted attempt).
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: Retry attempts performed (backoff waits taken).
    retries: int = 0
    #: Work items that recovered within their retry budget.
    recovered: int = 0
    #: Work items whose retry budget ran out while still faulted.
    exhausted: int = 0

    @property
    def injected(self) -> int:
        """Total fault occurrences across all kinds."""
        return sum(self.by_kind.values())

    def count_fault(self, kind: str) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def merge(self, other: "FaultTally") -> None:
        """Fold *other* (e.g. a shard tally) into this tally."""
        for kind, count in other.by_kind.items():
            self.by_kind[kind] = self.by_kind.get(kind, 0) + count
        self.retries += other.retries
        self.recovered += other.recovered
        self.exhausted += other.exhausted

    def skip_reasons(self) -> Dict[str, int]:
        """Queue-style ``reason -> count`` view of lost work."""
        if not self.exhausted:
            return {}
        return {EXHAUSTED_REASON: self.exhausted}

    def summary(self) -> str:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.by_kind.items())
        )
        return (
            f"{self.injected} faults injected ({kinds or 'none'}), "
            f"{self.retries} retries, {self.recovered} recovered, "
            f"{self.exhausted} exhausted"
        )


class WorkerCrash(Exception):
    """A scheduled worker death, carrying the shard's checkpoint.

    Raised by shard functions at the schedule's crash point and caught
    by the executor, which builds a resumed payload from ``checkpoint``
    and re-submits the shard. Constructed exclusively from its three
    positional arguments so it survives pickling across the process
    backend's boundary.
    """

    def __init__(self, shard_id: int, done: int, checkpoint: Any = None):
        super().__init__(shard_id, done, checkpoint)
        self.shard_id = shard_id
        #: Tasks completed before the crash (the resume start index).
        self.done = done
        #: Partial shard state to resume from (shape is shard-specific).
        self.checkpoint = checkpoint

    def __str__(self) -> str:
        return (
            f"worker crashed in shard {self.shard_id} after "
            f"{self.done} task(s)"
        )


def _default_faulted(result: Any) -> Optional[str]:
    """The injected-fault kind of *result*, if any (captures carry it
    in their ``fault`` field)."""
    return getattr(result, "fault", None)


def run_with_retries(
    attempt_fn: Callable[[int], Any],
    *,
    key: str,
    policy: Optional[RetryPolicy] = None,
    clock: Optional[Clock] = None,
    tally: Optional[FaultTally] = None,
    faulted: Callable[[Any], Optional[str]] = _default_faulted,
) -> Any:
    """Run ``attempt_fn(attempt)`` until it is fault-free or retries run
    out; returns the last result.

    ``attempt_fn`` receives the 0-based attempt number (which the fault
    schedule keys on). Only *injected* faults are retried -- organic
    failures of the synthetic world are permanent by construction, so
    retrying them would waste budget without changing the outcome.
    """
    result = attempt_fn(0)
    kind = faulted(result)
    if kind is None:
        return result
    if tally is not None:
        tally.count_fault(kind)
    delays = policy.schedule(key) if policy is not None else ()
    for retry_no, delay in enumerate(delays, start=1):
        if clock is not None:
            clock.sleep(delay)
        if tally is not None:
            tally.retries += 1
        result = attempt_fn(retry_no)
        kind = faulted(result)
        if kind is None:
            if tally is not None:
                tally.recovered += 1
            return result
        if tally is not None:
            tally.count_fault(kind)
    if tally is not None:
        tally.exhausted += 1
    return result
