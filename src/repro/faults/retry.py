"""Retry policies: capped exponential backoff with deterministic jitter.

The schedule for a given work item is a pure function of
``(policy seed, item key, attempt)`` -- the same keying discipline as
the executor's per-event RNGs -- so retry timing can never depend on
run order, worker count or wall-clock state. Three contract properties
are locked by the hypothesis tests in ``tests/test_properties.py``:

* same seed and key -> identical schedule, call after call;
* delays are monotone non-decreasing and never exceed ``max_delay``;
* the schedule length never exceeds ``max_retries``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded, bounded jitter.

    ``delay(key, n)`` is the wait before retry *n* (1-based). The base
    curve is ``base_delay * multiplier**(n-1)`` capped at ``max_delay``;
    jitter scales each delay by a deterministic factor in
    ``[1-jitter, 1+jitter]`` drawn from ``(seed, key, n)``. Delays are
    clamped monotone non-decreasing after jitter, so a jittered schedule
    keeps the backoff shape.
    """

    max_retries: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    #: Fractional jitter amplitude in [0, 1).
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")

    def schedule(self, key: str) -> Tuple[float, ...]:
        """All backoff delays for *key*, one per permitted retry."""
        delays = []
        previous = 0.0
        raw = self.base_delay
        for attempt in range(1, self.max_retries + 1):
            value = min(raw, self.max_delay)
            if self.jitter:
                rng = random.Random(f"{self.seed}:retry:{key}:{attempt}")
                value *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            value = max(previous, min(value, self.max_delay))
            delays.append(value)
            previous = value
            raw *= self.multiplier
        return tuple(delays)

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry *attempt* (1-based) of *key*."""
        if not 1 <= attempt <= self.max_retries:
            raise ValueError(
                f"attempt {attempt} outside [1, {self.max_retries}]"
            )
        return self.schedule(key)[attempt - 1]


#: A policy for tests and docs: plenty of retries, tiny virtual delays.
FAST_TEST_POLICY = RetryPolicy(
    max_retries=5, base_delay=0.01, max_delay=0.1, jitter=0.0
)
