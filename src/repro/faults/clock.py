"""Injectable clocks for retry backoff.

Backoff delays are *computed* by :class:`repro.faults.retry.RetryPolicy`
but *waited out* by a clock object, so the wait is a seam:

* :class:`VirtualClock` (the default everywhere) only accumulates the
  requested seconds. The synthetic web has no real I/O to wait for, and
  tests must never sleep.
* :class:`SystemClock` really sleeps. It exists for deployments that
  crawl something real; this module is the one place in the tree where
  ``time.sleep`` may be called (the DET005 lint rule flags it anywhere
  else).
"""

from __future__ import annotations

import time
from typing import List, Protocol


class Clock(Protocol):
    """What the retry machinery needs from a clock."""

    def sleep(self, seconds: float) -> None:
        """Wait for *seconds* (really, or virtually)."""
        ...


class VirtualClock:
    """Accumulates sleeps instead of performing them.

    The tally doubles as the test probe for backoff behaviour: after a
    retry loop, ``slept`` is exactly the sum of the policy's schedule
    prefix that was consumed.
    """

    def __init__(self) -> None:
        #: Total virtual seconds slept.
        self.slept = 0.0
        #: Individual sleep requests, in order.
        self.sleeps: List[float] = []

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep {seconds!r} seconds")
        self.slept += seconds
        self.sleeps.append(seconds)


class SystemClock:
    """Really sleeps; only for crawling a real, rate-limited target."""

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)
