"""Inline suppressions: ``# repro-lint: disable=DET002[,DET004|all]``.

A suppression silences matching findings **on the same physical line**
as the directive (the line the offending node starts on). Every
directive is tracked: a directive that silences nothing is itself
reported as a :data:`UNUSED_SUPPRESSION` finding, so stale suppressions
cannot accumulate and quietly widen the hole in the contract.

Comments are found with :mod:`tokenize`, not a text scan, so a
directive-shaped substring inside a string literal is never treated as
a directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set

#: Pseudo-rule id for "this suppression silenced nothing".
UNUSED_SUPPRESSION = "SUP001"

#: Wildcard accepted in a disable list.
ALL = "all"

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+|all)\s*$"
)


@dataclass
class Suppression:
    """One parsed directive on one line."""

    line: int
    #: Rule ids listed in the directive (uppercased), or ``{"all"}``.
    rules: Set[str]
    #: Rule ids that actually silenced a finding.
    used: Set[str] = field(default_factory=set)

    def covers(self, rule_id: str) -> bool:
        return ALL in self.rules or rule_id in self.rules

    def mark_used(self, rule_id: str) -> None:
        self.used.add(ALL if ALL in self.rules else rule_id)

    def unused_rules(self) -> List[str]:
        """Directive entries that silenced nothing, sorted."""
        return sorted(self.rules - self.used)


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """All ``repro-lint: disable=`` directives in *source*, by line.

    Raises nothing: token-level errors (e.g. in a file that does not
    parse) simply yield no directives -- the engine reports the parse
    failure separately.
    """
    directives: Dict[int, Suppression] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return directives
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE_RE.search(tok.string)
        if match is None:
            continue
        raw = match.group("rules")
        if raw.strip().lower() == ALL:
            rules = {ALL}
        else:
            rules = {
                part.strip().upper()
                for part in raw.split(",")
                if part.strip()
            }
        if rules:
            directives[tok.start[0]] = Suppression(
                line=tok.start[0], rules=rules
            )
    return directives
