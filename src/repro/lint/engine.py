"""The two-phase analysis engine.

**Phase 1** walks each file's AST exactly once, offering every node to
every enabled per-file rule, and simultaneously builds the module's
whole-program index (:mod:`repro.lint.index`). **Phase 2** merges the
indexes into a :class:`~repro.lint.index.Program` and runs the
whole-program rules (XMOD/RACE/CACHE) over it.

Inline suppressions are applied *after* both phases: a
``# repro-lint: disable=RULE`` directive silences phase-2 findings
anchored on its line exactly as it does per-file ones, and SUP001
(unused suppression) is only decided once every finding is known.

:func:`lint_source` checks one module with the per-file rules only --
there is no program to analyze for a lone string. :func:`lint_paths`
runs both phases. Findings are plain data -- ``path:line:col RULE
message`` -- so reporters and the baseline treat both phases
uniformly. A file that does not parse yields a ``PARSE001`` finding
naming its path and line instead of aborting the run.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.index import (
    ModuleIndex,
    Program,
    ProgramContext,
    build_module_index,
)
from repro.lint.rules import RULES, WHOLE_PROGRAM_RULES, Rule, RuleContext
from repro.lint.suppress import (
    ALL,
    UNUSED_SUPPRESSION,
    Suppression,
    parse_suppressions,
)

#: Pseudo-rule id for files that do not parse. Always enabled: a file
#: the analyzer cannot read is a finding, never a crash.
PARSE_ERROR = "PARSE001"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint hit, formatted as ``path:line:col RULE message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class LintResult:
    """Aggregated outcome of a lint run."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by an inline suppression.
    suppressed: int = 0
    #: Number of files checked.
    files: int = 0
    #: Wall-time per phase (``"phase1"``/``"phase2"``), seconds.
    timings: Dict[str, float] = field(default_factory=dict)

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed += other.suppressed
        self.files += other.files
        for key, value in other.timings.items():
            self.timings[key] = self.timings.get(key, 0.0) + value

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings)

    @property
    def clean(self) -> bool:
        return not self.findings


class _OnePassVisitor(ast.NodeVisitor):
    """Walks the tree once, maintaining the ancestor stack for rules."""

    def __init__(self, path: str, rules: List[Rule]):
        self.path = path
        self.rules = rules
        self._stack: List[ast.AST] = []
        self.raw: List[Tuple[ast.AST, str, str]] = []  # node, rule id, msg

    def visit(self, node: ast.AST) -> None:
        ctx = RuleContext(self.path, tuple(self._stack))
        for rule in self.rules:
            for offender, message in rule.check(node, ctx):
                self.raw.append((offender, rule.id, message))
        self._stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self._stack.pop()


def _position(node: ast.AST) -> Tuple[int, int]:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0) + 1  # 1-based like compilers
    return line, col


#: A finding awaiting suppression resolution: (line, col, rule, message).
_Pending = Tuple[int, int, str, str]


@dataclass
class FileAnalysis:
    """Phase-1 output for one file, before suppressions are applied."""

    path: str
    pending: List[_Pending] = field(default_factory=list)
    suppressions: Dict[int, Suppression] = field(default_factory=dict)
    index: Optional[ModuleIndex] = None
    parse_failed: bool = False


def _analyze_file(
    source: str,
    path: str,
    config: LintConfig,
    build_index: bool = True,
) -> FileAnalysis:
    """Run phase 1 on one module: per-file rules plus the index."""
    analysis = FileAnalysis(path=path)
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        col = getattr(exc, "offset", 1) or 1
        msg = exc.msg if isinstance(exc, SyntaxError) else str(exc)
        analysis.pending.append(
            (line, col, PARSE_ERROR, f"file does not parse: {msg}")
        )
        analysis.parse_failed = True
        return analysis

    analysis.suppressions = parse_suppressions(source)

    rules = [
        rule
        for rule_id, rule in RULES.items()
        if config.rule_enabled(rule_id)
        and not config.rule_allows_path(rule_id, path)
    ]
    visitor = _OnePassVisitor(path, rules)
    visitor.visit(tree)
    for node, rule_id, message in visitor.raw:
        line, col = _position(node)
        analysis.pending.append((line, col, rule_id, message))

    if build_index:
        analysis.index = build_module_index(
            tree, path, analysis.suppressions, config.spawn_methods
        )
    return analysis


def _resolve_file(
    analysis: FileAnalysis, result: LintResult, config: LintConfig
) -> None:
    """Apply suppressions to one file's pending findings, emit SUP001."""
    for line, col, rule_id, message in sorted(analysis.pending):
        directive = analysis.suppressions.get(line)
        if (
            directive is not None
            and rule_id != PARSE_ERROR
            and directive.covers(rule_id)
        ):
            directive.mark_used(rule_id)
            result.suppressed += 1
            continue
        result.findings.append(
            Finding(analysis.path, line, col, rule_id, message)
        )
    result.findings.extend(
        _unused_suppressions(analysis.path, analysis.suppressions, config)
    )


def lint_source(
    source: str,
    path: str,
    config: LintConfig = DEFAULT_CONFIG,
) -> LintResult:
    """Lint one module's *source* with the per-file (phase 1) rules.

    *path* is used for reports and allowlists. Whole-program rules
    need the full tree; use :func:`lint_paths` for those.
    """
    result = LintResult(files=1)
    analysis = _analyze_file(source, path, config, build_index=False)
    _resolve_file(analysis, result, config)
    result.findings.sort()
    return result


def _unused_suppressions(
    path: str, suppressions: Dict[int, Suppression], config: LintConfig
) -> Iterable[Finding]:
    for line in sorted(suppressions):
        directive = suppressions[line]
        for rule_id in directive.unused_rules():
            # A directive for a rule this run did not evaluate cannot
            # be judged unused: a --select subset must not flood the
            # report with the other families' (legitimately idle)
            # suppressions.
            if rule_id == ALL:
                if config.select:
                    continue
            elif not config.rule_enabled(rule_id) or config.rule_allows_path(
                rule_id, path
            ):
                continue
            label = "all rules" if rule_id == ALL else rule_id
            yield Finding(
                path,
                line,
                1,
                UNUSED_SUPPRESSION,
                f"suppression for {label} silences nothing on this line; "
                "remove it",
            )


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        else:
            files.append(path)
    # De-duplicate while keeping a deterministic order.
    seen = set()
    unique: List[Path] = []
    for p in sorted(files):
        key = str(p)
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def analyze_paths(
    paths: Iterable[Path],
    config: LintConfig = DEFAULT_CONFIG,
    root: Optional[Path] = None,
    lock_path: Optional[Path] = None,
) -> Tuple[LintResult, Program, ProgramContext]:
    """Run both phases over every ``.py`` file under *paths*.

    Reported paths are made relative to *root* (default: the current
    directory) when possible, so reports and baselines are stable
    across checkouts; *root* also anchors the cache-versions lock.
    Returns the result plus the merged program, so callers (the
    ``--update-lock`` writer, tests) can inspect the index.
    """
    root = Path.cwd() if root is None else root
    result = LintResult()
    analyses: Dict[str, FileAnalysis] = {}

    started = time.perf_counter()  # repro-lint: disable=DET002
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            rel = file_path.resolve().relative_to(root.resolve())
            report_path = rel.as_posix()
        except ValueError:
            report_path = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        result.files += 1
        analyses[report_path] = _analyze_file(source, report_path, config)
    phase1 = time.perf_counter() - started  # repro-lint: disable=DET002

    started = time.perf_counter()  # repro-lint: disable=DET002
    program = Program(
        analysis.index
        for analysis in analyses.values()
        if analysis.index is not None
    )
    ctx = ProgramContext(config=config, root=root, lock_path=lock_path)
    for rule_id, rule in WHOLE_PROGRAM_RULES.items():
        if not config.rule_enabled(rule_id):
            continue
        for path, line, col, message in rule.check_program(program, ctx):
            if config.rule_allows_path(rule_id, path):
                continue
            analysis = analyses.get(path)
            if analysis is None:
                analysis = analyses[path] = FileAnalysis(path=path)
            analysis.pending.append((line, col, rule_id, message))
    phase2 = time.perf_counter() - started  # repro-lint: disable=DET002

    for path in sorted(analyses):
        _resolve_file(analyses[path], result, config)
    result.findings.sort()
    result.timings = {"phase1": phase1, "phase2": phase2}
    return result, program, ctx


def lint_paths(
    paths: Iterable[Path],
    config: LintConfig = DEFAULT_CONFIG,
    root: Optional[Path] = None,
    lock_path: Optional[Path] = None,
) -> LintResult:
    """Lint every ``.py`` file under *paths*, both phases."""
    result, _, _ = analyze_paths(paths, config, root, lock_path)
    return result
