"""The single-pass AST engine: walk once, offer every node to every rule.

:func:`lint_source` checks one module; :func:`lint_paths` walks files
and directories (``.py`` files, sorted, skipping ``__pycache__``) and
aggregates. Findings are plain data -- ``path:line:col RULE message``
-- so reporters and the baseline can treat them uniformly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.rules import RULES, Rule, RuleContext
from repro.lint.suppress import (
    UNUSED_SUPPRESSION,
    Suppression,
    parse_suppressions,
)

#: Pseudo-rule id for files that do not parse.
PARSE_ERROR = "PARSE"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint hit, formatted as ``path:line:col RULE message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class LintResult:
    """Aggregated outcome of a lint run."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by an inline suppression.
    suppressed: int = 0
    #: Number of files checked.
    files: int = 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed += other.suppressed
        self.files += other.files

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings)

    @property
    def clean(self) -> bool:
        return not self.findings


class _OnePassVisitor(ast.NodeVisitor):
    """Walks the tree once, maintaining the ancestor stack for rules."""

    def __init__(self, path: str, rules: List[Rule]):
        self.path = path
        self.rules = rules
        self._stack: List[ast.AST] = []
        self.raw: List[Tuple[ast.AST, str, str]] = []  # node, rule id, msg

    def visit(self, node: ast.AST) -> None:
        ctx = RuleContext(self.path, tuple(self._stack))
        for rule in self.rules:
            for offender, message in rule.check(node, ctx):
                self.raw.append((offender, rule.id, message))
        self._stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self._stack.pop()


def _position(node: ast.AST) -> Tuple[int, int]:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0) + 1  # 1-based like compilers
    return line, col


def lint_source(
    source: str,
    path: str,
    config: LintConfig = DEFAULT_CONFIG,
) -> LintResult:
    """Lint one module's *source*; *path* is used for reports/allowlists."""
    result = LintResult(files=1)
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        col = getattr(exc, "offset", 1) or 1
        msg = exc.msg if isinstance(exc, SyntaxError) else str(exc)
        result.findings.append(
            Finding(path, line, col, PARSE_ERROR, f"file does not parse: {msg}")
        )
        return result

    rules = [
        rule
        for rule_id, rule in RULES.items()
        if config.rule_enabled(rule_id)
        and not config.rule_allows_path(rule_id, path)
    ]
    visitor = _OnePassVisitor(path, rules)
    visitor.visit(tree)

    suppressions = parse_suppressions(source)
    for node, rule_id, message in visitor.raw:
        line, col = _position(node)
        directive = suppressions.get(line)
        if directive is not None and directive.covers(rule_id):
            directive.mark_used(rule_id)
            result.suppressed += 1
            continue
        result.findings.append(Finding(path, line, col, rule_id, message))

    result.findings.extend(_unused_suppressions(path, suppressions))
    result.findings.sort()
    return result


def _unused_suppressions(
    path: str, suppressions: Dict[int, Suppression]
) -> Iterable[Finding]:
    for line in sorted(suppressions):
        directive = suppressions[line]
        for rule_id in directive.unused_rules():
            label = "all rules" if rule_id == "all" else rule_id
            yield Finding(
                path,
                line,
                1,
                UNUSED_SUPPRESSION,
                f"suppression for {label} silences nothing on this line; "
                "remove it",
            )


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        else:
            files.append(path)
    # De-duplicate while keeping a deterministic order.
    seen = set()
    unique: List[Path] = []
    for p in sorted(files):
        key = str(p)
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def lint_paths(
    paths: Iterable[Path],
    config: LintConfig = DEFAULT_CONFIG,
    root: Optional[Path] = None,
) -> LintResult:
    """Lint every ``.py`` file under *paths*.

    Reported paths are made relative to *root* (default: the current
    directory) when possible, so reports and baselines are stable
    across checkouts.
    """
    root = Path.cwd() if root is None else root
    total = LintResult()
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            rel = file_path.resolve().relative_to(root.resolve())
            report_path = rel.as_posix()
        except ValueError:
            report_path = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        total.extend(lint_source(source, report_path, config))
    total.findings.sort()
    return total
