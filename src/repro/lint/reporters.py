"""Text and JSON reporters over a lint run's findings.

Both outputs are deterministic: findings are sorted by
``(path, line, col, rule, message)`` and the JSON document uses sorted
keys, so diffs between runs reflect code changes only.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import IO, List

from repro.lint.engine import Finding, LintResult


def _counts_by_rule(findings: List[Finding]) -> Counter:
    return Counter(f.rule for f in findings)


def report_text(
    result: LintResult,
    new_findings: List[Finding],
    baselined: int,
    out: IO[str],
) -> None:
    """`file:line:col RULE message` lines plus a one-line summary."""
    for finding in sorted(new_findings):
        out.write(finding.format() + "\n")
    counts = _counts_by_rule(new_findings)
    by_rule = ", ".join(f"{r}={n}" for r, n in sorted(counts.items()))
    summary = (
        f"{len(new_findings)} finding(s) in {result.files} file(s)"
        f" [{by_rule}]" if new_findings
        else f"clean: 0 findings in {result.files} file(s)"
    )
    extras = []
    if baselined:
        extras.append(f"{baselined} baselined")
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed inline")
    if extras:
        summary += f" ({', '.join(extras)})"
    out.write(summary + "\n")


def report_json(
    result: LintResult,
    new_findings: List[Finding],
    baselined: int,
    out: IO[str],
) -> None:
    """Machine-readable report for CI annotation tooling."""
    document = {
        "files": result.files,
        "findings": [f.to_dict() for f in sorted(new_findings)],
        "counts": dict(sorted(_counts_by_rule(new_findings).items())),
        "baselined": baselined,
        "suppressed": result.suppressed,
        "clean": not new_findings,
    }
    json.dump(document, out, indent=2, sort_keys=True)
    out.write("\n")


REPORTERS = {"text": report_text, "json": report_json}
