"""The committed baseline: grandfathered findings that do not fail CI.

A baseline entry is ``(path, rule, message)`` with a count -- line
numbers are deliberately excluded so unrelated edits that shift code
do not invalidate the baseline. ``apply`` consumes matching findings
up to each entry's count; anything beyond that is *new* and fails the
run. The repo ships an **empty** baseline (``lint-baseline.json``):
every rule violation in tree is either fixed or carries an inline
justification.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.ioutil import PathLike, atomic_write
from repro.lint.engine import Finding

BaselineKey = Tuple[str, str, str]  # (path, rule, message)

_VERSION = 1


def _key(finding: Finding) -> BaselineKey:
    return (finding.path, finding.rule, finding.message)


@dataclass
class Baseline:
    """Grandfathered finding counts keyed by ``(path, rule, message)``."""

    entries: Dict[BaselineKey, int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(entries=dict(Counter(_key(f) for f in findings)))

    @classmethod
    def load(cls, path: PathLike) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        version = data.get("version")
        if version != _VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}"
            )
        entries: Dict[BaselineKey, int] = {}
        for row in data.get("findings", []):
            key = (row["path"], row["rule"], row["message"])
            entries[key] = entries.get(key, 0) + int(row.get("count", 1))
        return cls(entries=entries)

    def write(self, path: PathLike) -> None:
        """Atomically write the baseline, deterministically ordered."""
        rows = [
            {"path": p, "rule": r, "message": m, "count": c}
            for (p, r, m), c in sorted(self.entries.items())
        ]
        with atomic_write(path) as handle:
            json.dump(
                {"version": _VERSION, "findings": rows},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")

    def apply(self, findings: Iterable[Finding]) -> Tuple[List[Finding], int]:
        """Split *findings* into (new findings, number baselined)."""
        budget = dict(self.entries)
        new: List[Finding] = []
        baselined = 0
        for finding in findings:
            key = _key(finding)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined += 1
            else:
                new.append(finding)
        return new, baselined

    def __len__(self) -> int:
        return sum(self.entries.values())
