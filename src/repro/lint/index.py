"""Phase 1's per-module index and the merged whole-program view.

While the per-file rules walk a module's AST, the engine also builds a
:class:`ModuleIndex` for it: defined functions and classes, resolved
imports, call edges, nondeterminism-source uses, shared-state writes,
``map_shards`` spawn sites, and a normalized code digest. Phase 2
merges the indexes into a :class:`Program`, which resolves dotted call
chains into a project call graph for the whole-program rules
(XMOD/RACE) and exposes the statically-declared cache-stage closures
(CACHE).

Resolution is deliberately conservative and purely syntactic:

* imports (including aliased and relative ones) map local names to
  fully-qualified ones;
* ``self.method()`` / ``cls.method()`` resolve through the class and
  its resolvable bases;
* one-step type inference covers the common construction idioms --
  ``self.attr = ClassName(...)`` in any method, ``var = ClassName(...)``
  locally, simple parameter/field annotations, module-level singletons;
* as a last resort, an attribute call resolves to a method name defined
  by exactly **one** indexed class (unique-name fallback) unless the
  name is a common container-protocol name.

Anything unresolvable contributes no edge: the analyzer under-
approximates the graph rather than flooding the tree with speculative
findings. The determinism bar is the same as the rest of the linter:
identical trees produce byte-identical indexes, graphs and findings.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.suppress import Suppression

#: Module-level dict assignments captured verbatim into the index; the
#: cache staleness rules read these two declarations statically.
TRACKED_DECLS = ("CODE_VERSIONS", "STAGE_CLOSURES")

#: Method names whose call mutates the receiver in place.
MUTATING_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popitem", "popleft", "remove", "reverse",
        "setdefault", "sort", "update",
    }
)

#: Attribute-call names never resolved through the unique-name fallback:
#: they are container/file-protocol names whose receiver is almost
#: always a builtin, so a single class defining one must not attract
#: every such call in the program.
_FALLBACK_STOPLIST = frozenset(
    {
        "append", "add", "clear", "close", "copy", "extend", "format",
        "get", "index", "items", "join", "keys", "pop", "read", "remove",
        "sort", "split", "update", "values", "write",
    }
) | MUTATING_METHODS

#: ``random.<fn>`` / clock / hash callees seeding *value* taint, and the
#: filesystem-order producers seeding *order* taint. Kept in sync with
#: the per-file DET rules by the rule-family tests.
_VALUE_SOURCE_TIME = frozenset(
    {
        "ctime", "gmtime", "localtime", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time",
        "process_time_ns", "time", "time_ns",
    }
)
_VALUE_SOURCE_DATETIME = frozenset({"now", "today", "utcnow"})
_VALUE_SOURCE_RANDOM = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)
_ORDER_SOURCE_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
_ORDER_SOURCE_METHODS = frozenset({"iterdir", "glob", "rglob"})


# ---------------------------------------------------------------------------
# Index data model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CallSite:
    """One dotted call chain observed inside a function body."""

    parts: Tuple[str, ...]
    line: int
    col: int


@dataclass(frozen=True)
class SourceUse:
    """A nondeterminism source used directly in a function body."""

    #: ``"value"`` (clock/RNG/hash) or ``"order"`` (FS-order iteration).
    kind: str
    #: Human label, e.g. ``time.time()``.
    detail: str
    line: int
    col: int
    #: True when the site is sanctioned where it stands: covered by a
    #: same-line DET suppression (a reviewed justification) or, for
    #: order sources, consumed directly by ``sorted(...)``.
    sanctioned: bool
    #: The per-file rule family the sanction maps to (DET001..DET004).
    det_rule: str


@dataclass(frozen=True)
class SharedWrite:
    """A write that may target state shared beyond the function."""

    #: Dotted chain of the written base, e.g. ``("_WORLD_CACHE",)`` or
    #: ``("self", "__class__")``.
    base: Tuple[str, ...]
    #: Attribute being assigned on the base, or ``None`` for subscript
    #: assignment / mutating method calls on the base itself.
    member: Optional[str]
    #: How the write happens, e.g. ``"assignment"`` or ``".append(...)"``.
    via: str
    line: int
    col: int
    #: True when the base name was declared ``global`` in this function.
    declared_global: bool = False


@dataclass(frozen=True)
class SpawnSite:
    """A call shipping a worker function to the shard executor."""

    method: str
    worker: Optional[Tuple[str, ...]]
    line: int
    col: int


@dataclass
class FunctionInfo:
    """Everything phase 2 needs to know about one function."""

    qualname: str
    module: str
    name: str
    line: int
    #: Owning class qualname for methods, else ``None``.
    owner: Optional[str] = None
    first_arg: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)
    sources: List[SourceUse] = field(default_factory=list)
    writes: List[SharedWrite] = field(default_factory=list)
    spawns: List[SpawnSite] = field(default_factory=list)
    #: Local variable -> raw dotted constructor/annotation name.
    local_types: Dict[str, str] = field(default_factory=dict)
    #: Names assigned locally (shadow detection for write resolution).
    local_names: Set[str] = field(default_factory=set)
    #: Names declared ``global`` anywhere in the function body.
    globals_declared: Set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    """One class: its methods, bases and inferred attribute types."""

    qualname: str
    module: str
    name: str
    line: int
    bases: Tuple[str, ...] = ()
    #: method name -> function qualname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: ``self.attr`` -> raw dotted type name (constructor assignment in
    #: any method, or a simple class-body annotation).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class DictDecl:
    """A tracked module-level ``NAME = {...literal...}`` declaration."""

    name: str
    line: int
    value: dict
    #: literal key -> line of the key in the dict display.
    key_lines: Dict[str, int] = field(default_factory=dict)


@dataclass
class ModuleIndex:
    """Phase-1 output for one parsed module."""

    module: str
    path: str
    digest: str
    imports: Dict[str, str] = field(default_factory=dict)
    #: Names bound at module level (defs, classes, assignments).
    module_names: Set[str] = field(default_factory=set)
    #: Module-level ``X = ClassName(...)`` singleton types.
    var_types: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    decls: Dict[str, DictDecl] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Module naming & normalized digests
# ---------------------------------------------------------------------------
def module_name_for(path: str) -> str:
    """Dotted module name for a reported *path*.

    ``src/repro/lint/engine.py`` -> ``repro.lint.engine``;
    ``src/repro/lint/__init__.py`` -> ``repro.lint``;
    ``scripts/cache_smoke.py`` -> ``scripts.cache_smoke``. A leading
    ``src`` component is dropped so names match import statements.
    Paths outside the repo keep every component, which still yields a
    unique, deterministic name.
    """
    parts = [p for p in PurePosixPath(path.replace("\\", "/")).parts
             if p not in ("/", "\\")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    while parts and parts[0] in ("src", "..", "."):
        parts = parts[1:]
    return ".".join(p.replace(".", "_") if i < len(parts) - 1 else p
                    for i, p in enumerate(parts)) or "unknown"


_DIGEST_SKIP_FIELDS = frozenset(
    {"type_comment", "type_ignores", "type_params"}
)


def _normalized_dump(node) -> str:
    """A canonical, version-stable dump of an AST fragment.

    Unlike :func:`ast.dump` this drops position attributes, empty and
    defaulted fields (so interpreter versions that *add* optional
    fields -- e.g. ``type_params`` in 3.12 -- produce identical dumps),
    and module/function/class docstrings. Comments never reach the AST.
    The result changes iff the executable shape of the code changes.
    """
    if isinstance(node, ast.AST):
        body = getattr(node, "body", None)
        skip_doc = (
            isinstance(
                node,
                (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef,
                 ast.ClassDef),
            )
            and isinstance(body, list)
            and body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        )
        rendered: List[str] = []
        for name in node._fields:
            if name in _DIGEST_SKIP_FIELDS:
                continue
            value = getattr(node, name, None)
            if name == "body" and skip_doc:
                value = value[1:]
            if isinstance(node, ast.Constant) and name == "value":
                rendered.append(
                    f"value={type(value).__name__}:{value!r}"
                )
                continue
            if value is None or (isinstance(value, list) and not value):
                continue
            rendered.append(f"{name}={_normalized_dump(value)}")
        return f"{type(node).__name__}({','.join(rendered)})"
    if isinstance(node, list):
        return "[" + ",".join(_normalized_dump(item) for item in node) + "]"
    return f"{type(node).__name__}:{node!r}"


def normalized_digest(tree: ast.AST) -> str:
    """SHA-256 over the normalized dump of *tree*."""
    dump = _normalized_dump(tree)
    return hashlib.sha256(dump.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Index construction
# ---------------------------------------------------------------------------
def _dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``("a", "b", "c")`` for an ``a.b.c`` Name/Attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "type"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Name)
        and node.args[0].id == "self"
    ):
        # ``type(self).attr = ...`` is a class-attribute write.
        parts.append("__class__")
        parts.append("self")
        return tuple(reversed(parts))
    return None


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Raw dotted name for a simple ``x: ClassName`` annotation."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text if text.replace(".", "").replace("_", "").isalnum() else None
    parts = _dotted_parts(node)
    return ".".join(parts) if parts else None


class _FunctionScanner(ast.NodeVisitor):
    """Collects calls/sources/writes/spawns from one function body.

    Nested functions and lambdas are folded into the enclosing
    function: a closure passed as a callback executes on behalf of its
    definer, so for taint and reachability purposes the definer
    "contains" the closure's calls.
    """

    def __init__(
        self,
        info: FunctionInfo,
        suppressions: Dict[int, Suppression],
        spawn_methods: Sequence[str],
    ):
        self.info = info
        self.suppressions = suppressions
        self.spawn_methods = frozenset(spawn_methods)
        self.globals_declared: Set[str] = set()
        self._parents: List[ast.AST] = []

    # -- generic walk with a parent stack -------------------------------
    def visit(self, node: ast.AST) -> None:
        self._collect(node)
        self._parents.append(node)
        try:
            self.generic_visit(node)
        finally:
            self._parents.pop()

    def _parent(self) -> Optional[ast.AST]:
        return self._parents[-1] if self._parents else None

    # -- collection -----------------------------------------------------
    def _collect(self, node: ast.AST) -> None:
        if isinstance(node, ast.Global):
            self.globals_declared.update(node.names)
        elif isinstance(node, ast.Call):
            self._collect_call(node)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                self._collect_write_target(target, "assignment")
            self._collect_local_type(node)
        elif isinstance(node, ast.AugAssign):
            self._collect_write_target(node.target, "augmented assignment")
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._collect_write_target(node.target, "assignment")
            if isinstance(node.target, ast.Name):
                self.info.local_names.add(node.target.id)
                ann = _annotation_name(node.annotation)
                if ann:
                    self.info.local_types.setdefault(node.target.id, ann)
        elif isinstance(node, ast.For):
            self._collect_write_target(node.target, "loop rebinding")

    def _collect_call(self, node: ast.Call) -> None:
        parts = _dotted_parts(node.func)
        if parts is not None:
            self.info.calls.append(
                CallSite(parts, node.lineno, node.col_offset + 1)
            )
            self._collect_source(node, parts)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self.spawn_methods
            and node.args
        ):
            worker = _dotted_parts(node.args[0])
            self.info.spawns.append(
                SpawnSite(
                    node.func.attr, worker, node.lineno, node.col_offset + 1
                )
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
        ):
            base = _dotted_parts(node.func.value)
            if base is not None:
                self._record_write(
                    base, None, f".{node.func.attr}(...) call",
                    node.lineno, node.col_offset + 1,
                )

    # -- nondeterminism sources ----------------------------------------
    def _collect_source(self, node: ast.Call, parts: Tuple[str, ...]) -> None:
        name = ".".join(parts)
        mod, _, fn = name.rpartition(".")
        detail: Optional[str] = None
        kind = "value"
        det_rule = ""
        if mod == "random" and fn in _VALUE_SOURCE_RANDOM:
            detail, det_rule = f"random.{fn}()", "DET001"
        elif name in ("random.Random", "Random") and not node.args \
                and not node.keywords:
            detail, det_rule = "unseeded random.Random()", "DET001"
        elif name == "random.SystemRandom":
            detail, det_rule = "random.SystemRandom()", "DET001"
        elif mod == "time" and fn in _VALUE_SOURCE_TIME:
            detail, det_rule = f"time.{fn}()", "DET002"
        elif mod and fn in _VALUE_SOURCE_DATETIME:
            detail, det_rule = f"{name}()", "DET002"
        elif name == "hash" and len(parts) == 1:
            detail, det_rule = "builtin hash()", "DET003"
        elif name in _ORDER_SOURCE_CALLS:
            detail, kind, det_rule = f"{name}()", "order", "DET004"
        elif (
            len(parts) > 1
            and parts[-1] in _ORDER_SOURCE_METHODS
            and not node.args
            and not node.keywords
        ):
            detail, kind, det_rule = f".{parts[-1]}()", "order", "DET004"
        if detail is None:
            return
        sanctioned = self._sanctioned(node, kind, det_rule)
        self.info.sources.append(
            SourceUse(
                kind, detail, node.lineno, node.col_offset + 1,
                sanctioned, det_rule,
            )
        )

    def _sanctioned(self, node: ast.Call, kind: str, det_rule: str) -> bool:
        directive = self.suppressions.get(node.lineno)
        if directive is not None and directive.covers(det_rule):
            return True
        if kind == "order":
            parent = self._parent()
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in ("sorted", "len", "sum", "min", "max")
                and node in parent.args
            ):
                return True
        return False

    # -- shared-state writes -------------------------------------------
    def _collect_write_target(self, target: ast.AST, via: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._collect_write_target(element, via)
            return
        if isinstance(target, ast.Starred):
            self._collect_write_target(target.value, via)
            return
        if isinstance(target, ast.Name):
            if target.id not in self.globals_declared:
                self.info.local_names.add(target.id)
            if target.id in self.globals_declared:
                self._record_write(
                    (target.id,), None, f"global {via}",
                    target.lineno, target.col_offset + 1,
                    declared_global=True,
                )
            return
        if isinstance(target, ast.Subscript):
            base = _dotted_parts(target.value)
            if base is not None:
                self._record_write(
                    base, None, f"subscript {via}",
                    target.lineno, target.col_offset + 1,
                )
            return
        if isinstance(target, ast.Attribute):
            base = _dotted_parts(target.value)
            if base is not None:
                self._record_write(
                    base, target.attr, f"attribute {via}",
                    target.lineno, target.col_offset + 1,
                )

    def _record_write(
        self,
        base: Tuple[str, ...],
        member: Optional[str],
        via: str,
        line: int,
        col: int,
        declared_global: bool = False,
    ) -> None:
        self.info.writes.append(
            SharedWrite(base, member, via, line, col, declared_global)
        )

    # -- one-step local type inference ---------------------------------
    def _collect_local_type(self, node: ast.Assign) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        value = node.value
        if isinstance(value, ast.Call):
            ctor = _dotted_parts(value.func)
            if ctor is not None:
                self.info.local_types[node.targets[0].id] = ".".join(ctor)


def _scan_function(
    node,
    qualname: str,
    module: str,
    owner: Optional[str],
    suppressions: Dict[int, Suppression],
    spawn_methods: Sequence[str],
) -> Tuple[FunctionInfo, Set[str]]:
    """Index one (async) function def, folding nested defs/lambdas in."""
    info = FunctionInfo(
        qualname=qualname, module=module, name=node.name, line=node.lineno,
        owner=owner,
    )
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    if positional:
        info.first_arg = positional[0].arg
    for arg in positional + list(args.kwonlyargs):
        info.local_names.add(arg.arg)
        ann = _annotation_name(arg.annotation)
        if ann:
            info.local_types.setdefault(arg.arg, ann)
    scanner = _FunctionScanner(info, suppressions, spawn_methods)
    for statement in node.body:
        scanner.visit(statement)
    info.globals_declared = scanner.globals_declared
    return info, scanner.globals_declared


def _literal_dict_decl(node) -> Optional[DictDecl]:
    if isinstance(node, ast.Assign):
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return None
        name = node.targets[0].id
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        name = node.target.id
    else:
        return None
    if name not in TRACKED_DECLS or not isinstance(node.value, ast.Dict):
        return None
    try:
        value = ast.literal_eval(node.value)
    except (ValueError, TypeError):
        return None
    key_lines: Dict[str, int] = {}
    for key in node.value.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            key_lines[key.value] = key.lineno
    return DictDecl(name=name, line=node.lineno, value=value,
                    key_lines=key_lines)


def _relative_base(module: str, is_package: bool, level: int) -> str:
    """The package a level-*level* relative import resolves against."""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[: max(0, len(parts) - drop)]
    return ".".join(parts)


class _ModuleScanner:
    """Builds the :class:`ModuleIndex` for one parsed file."""

    def __init__(
        self,
        tree: ast.Module,
        path: str,
        suppressions: Dict[int, Suppression],
        spawn_methods: Sequence[str],
    ):
        self.tree = tree
        self.path = path
        self.is_package = path.replace("\\", "/").endswith("/__init__.py")
        self.index = ModuleIndex(
            module=module_name_for(path),
            path=path,
            digest=normalized_digest(tree),
        )
        self.suppressions = suppressions
        self.spawn_methods = spawn_methods

    def build(self) -> ModuleIndex:
        self._collect_imports(self.tree)
        for node in self.tree.body:
            self._top_level(node)
        return self.index

    # -- imports anywhere in the file ----------------------------------
    def _collect_imports(self, tree: ast.Module) -> None:
        # Function-local imports matter too (deferred imports are the
        # idiom for cycle-breaking in this codebase), so imports are
        # collected over the whole file, not just the module body.
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else bound
                    self.index.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = _relative_base(
                        self.index.module, self.is_package, node.level
                    )
                    source = (
                        f"{base}.{node.module}" if node.module else base
                    )
                else:
                    source = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.index.imports[bound] = f"{source}.{alias.name}"

    # -- module body ----------------------------------------------------
    def _top_level(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{self.index.module}.{node.name}"
            info, _ = _scan_function(
                node, qualname, self.index.module, None,
                self.suppressions, self.spawn_methods,
            )
            self.index.functions[qualname] = info
            self.index.module_names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            self._scan_class(node)
            self.index.module_names.add(node.name)
        elif isinstance(node, ast.Assign):
            decl = _literal_dict_decl(node)
            if decl is not None:
                self.index.decls[decl.name] = decl
            for target in node.targets:
                for element in (
                    target.elts if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                ):
                    if isinstance(element, ast.Name):
                        self.index.module_names.add(element.id)
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                ctor = _dotted_parts(node.value.func)
                if ctor is not None:
                    self.index.var_types[node.targets[0].id] = ".".join(ctor)
        elif isinstance(node, ast.AnnAssign):
            decl = _literal_dict_decl(node)
            if decl is not None:
                self.index.decls[decl.name] = decl
            if isinstance(node.target, ast.Name):
                self.index.module_names.add(node.target.id)
                ann = _annotation_name(node.annotation)
                if ann:
                    self.index.var_types.setdefault(node.target.id, ann)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING / try-import guards: index their bodies too.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._top_level(child)

    def _scan_class(self, node: ast.ClassDef) -> None:
        qualname = f"{self.index.module}.{node.name}"
        bases = []
        for base in node.bases:
            parts = _dotted_parts(base)
            if parts is not None:
                bases.append(".".join(parts))
        cls = ClassInfo(
            qualname=qualname, module=self.index.module, name=node.name,
            line=node.lineno, bases=tuple(bases),
        )
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qual = f"{qualname}.{child.name}"
                info, _ = _scan_function(
                    child, method_qual, self.index.module, qualname,
                    self.suppressions, self.spawn_methods,
                )
                cls.methods[child.name] = method_qual
                self.index.functions[method_qual] = info
                self._infer_attr_types(child, cls)
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                ann = _annotation_name(child.annotation)
                if ann:
                    cls.attr_types.setdefault(child.target.id, ann)
        self.index.classes[qualname] = cls

    def _infer_attr_types(self, method, cls: ClassInfo) -> None:
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if isinstance(node.value, ast.Call):
                ctor = _dotted_parts(node.value.func)
                if ctor is not None:
                    cls.attr_types.setdefault(target.attr, ".".join(ctor))


def build_module_index(
    tree: ast.Module,
    path: str,
    suppressions: Dict[int, Suppression],
    spawn_methods: Sequence[str] = ("map_shards",),
) -> ModuleIndex:
    """Index one parsed module for the whole-program phase."""
    return _ModuleScanner(tree, path, suppressions, spawn_methods).build()


# ---------------------------------------------------------------------------
# The merged program
# ---------------------------------------------------------------------------
@dataclass
class ProgramContext:
    """What the whole-program rules may consult besides the index."""

    config: object
    #: Repo root the reported paths are relative to (lock resolution).
    root: Optional[Path] = None
    #: ``cache-versions.lock.json`` location, or ``None`` for
    #: ``<root>/cache-versions.lock.json``.
    lock_path: Optional[Path] = None

    def resolved_lock_path(self) -> Optional[Path]:
        if self.lock_path is not None:
            return self.lock_path
        if self.root is not None:
            return self.root / "cache-versions.lock.json"
        return None


class Program:
    """The merged per-module indexes plus call-chain resolution."""

    def __init__(self, modules: Iterable[ModuleIndex]):
        self.modules: Dict[str, ModuleIndex] = {}
        for index in modules:
            self.modules[index.module] = index
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for index in self.modules.values():
            self.functions.update(index.functions)
            self.classes.update(index.classes)
        self._method_owners: Dict[str, List[str]] = {}
        for cls_qual in sorted(self.classes):
            for method in self.classes[cls_qual].methods:
                self._method_owners.setdefault(method, []).append(cls_qual)
        self._edges: Dict[str, Tuple[str, ...]] = {}

    # -- name resolution ------------------------------------------------
    def _expand(
        self, index: ModuleIndex, parts: Tuple[str, ...]
    ) -> Optional[str]:
        """Fully-qualified dotted name for *parts* in *index*'s scope."""
        first = parts[0]
        if first in index.imports:
            return ".".join((index.imports[first],) + parts[1:])
        if first in index.module_names:
            return ".".join((index.module, ) + parts)
        return None

    def _resolve_class(
        self, index: ModuleIndex, raw: str
    ) -> Optional[str]:
        fqn = self._expand(index, tuple(raw.split(".")))
        if fqn in self.classes:
            return fqn
        if raw in self.classes:
            return raw
        return None

    def _resolve_method(
        self, cls_qual: str, name: str, _seen: Optional[Set[str]] = None
    ) -> List[str]:
        """Resolve *name* on *cls_qual*, walking resolvable bases."""
        seen = _seen if _seen is not None else set()
        if cls_qual in seen or cls_qual not in self.classes:
            return []
        seen.add(cls_qual)
        cls = self.classes[cls_qual]
        if name in cls.methods:
            return [cls.methods[name]]
        index = self.modules.get(cls.module)
        for base in cls.bases:
            base_qual = (
                self._resolve_class(index, base) if index is not None
                else None
            )
            if base_qual is not None:
                found = self._resolve_method(base_qual, name, seen)
                if found:
                    return found
        return []

    def resolve_call(
        self, func: FunctionInfo, call_parts: Tuple[str, ...]
    ) -> List[str]:
        """Candidate callee qualnames for a call chain in *func*."""
        index = self.modules.get(func.module)
        if index is None or not call_parts:
            return []
        first = call_parts[0]
        # self.method() / cls.method() / self.attr.method()
        if first in ("self", "cls") and func.owner is not None:
            if len(call_parts) == 2:
                return self._resolve_method(func.owner, call_parts[1])
            if len(call_parts) == 3:
                owner = self.classes.get(func.owner)
                attr_raw = owner.attr_types.get(call_parts[1]) if owner else None
                if attr_raw:
                    cls_qual = self._resolve_class(index, attr_raw)
                    if cls_qual:
                        return self._resolve_method(cls_qual, call_parts[2])
                return self._unique_fallback(call_parts[-1])
        # var.method() through one-step local / module-singleton types
        if len(call_parts) == 2:
            raw = func.local_types.get(first) or index.var_types.get(first)
            if raw:
                cls_qual = self._resolve_class(index, raw)
                if cls_qual:
                    resolved = self._resolve_method(cls_qual, call_parts[1])
                    if resolved:
                        return resolved
        # plain function / imported callable / class constructor
        fqn = self._expand(index, call_parts)
        if fqn is not None:
            if fqn in self.functions:
                return [fqn]
            if fqn in self.classes:
                init = self.classes[fqn].methods.get("__init__")
                return [init] if init else []
        if len(call_parts) == 1 and first in self.functions:
            return [first]
        # unique-method-name fallback
        if len(call_parts) >= 2:
            return self._unique_fallback(call_parts[-1])
        return []

    def _unique_fallback(self, method: str) -> List[str]:
        if method.startswith("__") or method in _FALLBACK_STOPLIST:
            return []
        owners = self._method_owners.get(method, [])
        if len(owners) == 1:
            return [self.classes[owners[0]].methods[method]]
        return []

    # -- call graph -----------------------------------------------------
    def edges(self, qualname: str) -> Tuple[str, ...]:
        """Sorted, de-duplicated callee qualnames of one function."""
        cached = self._edges.get(qualname)
        if cached is not None:
            return cached
        func = self.functions.get(qualname)
        targets: Set[str] = set()
        if func is not None:
            for call in func.calls:
                for target in self.resolve_call(func, call.parts):
                    if target != qualname:
                        targets.add(target)
        result = tuple(sorted(targets))
        self._edges[qualname] = result
        return result

    def reachable(
        self,
        roots: Sequence[str],
        skip_module=None,
    ) -> Dict[str, Optional[str]]:
        """BFS over call edges from *roots*; maps qualname -> parent.

        Roots map to ``None``. *skip_module* (module name -> bool)
        prunes whole modules -- taint neither seeds in nor propagates
        through them. Deterministic: the frontier is processed sorted.
        """
        parents: Dict[str, Optional[str]] = {}
        frontier: List[str] = []
        for root in sorted(set(roots)):
            if root in self.functions and root not in parents:
                parents[root] = None
                frontier.append(root)
        while frontier:
            frontier.sort()
            current = frontier.pop(0)
            for callee in self.edges(current):
                if callee in parents:
                    continue
                func = self.functions.get(callee)
                if func is None:
                    continue
                if skip_module is not None and skip_module(func.module):
                    continue
                parents[callee] = current
                frontier.append(callee)
        return parents

    def chain(
        self, parents: Dict[str, Optional[str]], qualname: str
    ) -> List[str]:
        """Root-first call chain ending at *qualname*."""
        path = [qualname]
        seen = {qualname}
        while True:
            parent = parents.get(path[-1])
            if parent is None or parent in seen:
                break
            path.append(parent)
            seen.add(parent)
        return list(reversed(path))

    # -- worker entries -------------------------------------------------
    def worker_entries(self) -> List[Tuple[str, str]]:
        """``(worker qualname, spawning function qualname)`` pairs."""
        out: List[Tuple[str, str]] = []
        for qualname in sorted(self.functions):
            func = self.functions[qualname]
            index = self.modules.get(func.module)
            if index is None:
                continue
            for spawn in func.spawns:
                if spawn.worker is None:
                    continue
                for target in self.resolve_call(func, spawn.worker):
                    out.append((target, qualname))
        return sorted(set(out))

    # -- tracked declarations ------------------------------------------
    def find_decls(self, name: str) -> List[Tuple[ModuleIndex, DictDecl]]:
        """All modules declaring tracked dict *name*, sorted by module."""
        found = []
        for module in sorted(self.modules):
            decl = self.modules[module].decls.get(name)
            if decl is not None:
                found.append((self.modules[module], decl))
        return found
