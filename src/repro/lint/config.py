"""Linter configuration: enabled rules and per-rule path allowlists.

The allowlists answer "where may this hazard legitimately live?" --
e.g. wall-clock may only enter the pipeline through the injectable
tracer clock, and the observability layer itself forwards metric names
it received as parameters. Everywhere else the rule applies and a
violation needs an inline suppression with a justification comment.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

#: Per-rule path allowlists (fnmatch globs over ``/``-separated paths).
#:
#: * ``DET002`` -- ``repro.obs.trace`` takes the wall clock as an
#:   injectable constructor default; that seam is the one sanctioned
#:   entry point for real time. Duration timing elsewhere uses inline
#:   ``# repro-lint: disable=DET002`` suppressions so each site carries
#:   its own justification. ``repro.obs.memory`` is the same seam for
#:   process-memory readings (``getrusage``/``tracemalloc``): ambient
#:   like the clock, injected everywhere else.
#: * ``DET005`` -- ``repro.faults.clock`` is the injectable-clock seam:
#:   ``SystemClock`` is the one place allowed to call ``time.sleep``
#:   for real; everything else must go through a ``Clock``.
#: * ``OBS001`` -- the observability layer itself forwards names it
#:   received as parameters (``Observability.span`` -> ``tracer.span``),
#:   so the literal-name contract is checked at call sites, not inside
#:   the layer. ``repro.cache`` registers its fixed counter family
#:   (``cache_{hits,misses,invalidations}_total``) through a loop over
#:   a module-level literal table, so the names stay grep-able but reach
#:   ``metrics.counter`` via a variable.
DEFAULT_ALLOW: Dict[str, Tuple[str, ...]] = {
    "DET002": (
        "*/repro/obs/trace.py",
        "repro/obs/trace.py",
        "*/repro/obs/memory.py",
        "repro/obs/memory.py",
    ),
    "DET005": ("*/repro/faults/clock.py", "repro/faults/clock.py"),
    "OBS001": (
        "*/repro/obs/*.py",
        "repro/obs/*.py",
        "*/repro/cache.py",
        "repro/cache.py",
    ),
}


#: Entry-point patterns (fnmatch over function qualnames) whose
#: transitive callees affect published results: the crawl drivers, the
#: streaming engine, and every ``Study`` derivation. XMOD taint is
#: reported only when one of these can reach a nondeterminism source.
DEFAULT_ENTRY_POINTS: Tuple[str, ...] = (
    "repro.crawler.platform.NetographPlatform.run",
    "repro.crawler.platform.NetographPlatform.ingest_day",
    "repro.crawler.toplist_crawl.ToplistCrawler.run",
    "repro.stream.engine.StreamingStudyEngine.*",
    "repro.core.pipeline.Study.*",
)

#: Module patterns that neither seed nor propagate XMOD taint: the
#: sanctioned homes of wall-clock and randomness, which export them
#: only through injectable/seeded interfaces.
DEFAULT_BARRIER_MODULES: Tuple[str, ...] = (
    "repro.obs",
    "repro.obs.*",
    "repro.faults.clock",
)

#: Executor methods whose first positional argument is a shard worker
#: function; RACE reachability is rooted at those workers.
DEFAULT_SPAWN_METHODS: Tuple[str, ...] = ("map_shards",)


@dataclass(frozen=True)
class LintConfig:
    """Immutable configuration for one lint run."""

    #: Rule selectors to run; empty means "all registered rules". A
    #: selector is an exact id (``DET002``) or a family prefix
    #: (``DET``, ``XMOD``, ``CACHE``).
    select: FrozenSet[str] = frozenset()
    #: Rule selectors to skip (same exact-or-prefix semantics).
    ignore: FrozenSet[str] = frozenset()
    #: rule id -> path globs where the rule does not apply.
    allow: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW)
    )
    #: XMOD entry-point qualname patterns.
    entry_points: Tuple[str, ...] = DEFAULT_ENTRY_POINTS
    #: XMOD taint-barrier module patterns.
    barrier_modules: Tuple[str, ...] = DEFAULT_BARRIER_MODULES
    #: Shard-spawn method names for RACE reachability.
    spawn_methods: Tuple[str, ...] = DEFAULT_SPAWN_METHODS

    @staticmethod
    def _matches(rule_id: str, selectors: FrozenSet[str]) -> bool:
        return any(
            rule_id == selector or rule_id.startswith(selector)
            for selector in selectors
        )

    def rule_enabled(self, rule_id: str) -> bool:
        if self._matches(rule_id, self.ignore):
            return False
        if self.select and not self._matches(rule_id, self.select):
            return False
        return True

    def rule_allows_path(self, rule_id: str, path: str) -> bool:
        """True if *path* is allowlisted for *rule_id* (rule skipped)."""
        normalized = path.replace("\\", "/")
        for pattern in self.allow.get(rule_id, ()):
            if fnmatch.fnmatch(normalized, pattern):
                return True
        return False


DEFAULT_CONFIG = LintConfig()
