"""Linter configuration: enabled rules and per-rule path allowlists.

The allowlists answer "where may this hazard legitimately live?" --
e.g. wall-clock may only enter the pipeline through the injectable
tracer clock, and the observability layer itself forwards metric names
it received as parameters. Everywhere else the rule applies and a
violation needs an inline suppression with a justification comment.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

#: Per-rule path allowlists (fnmatch globs over ``/``-separated paths).
#:
#: * ``DET002`` -- ``repro.obs.trace`` takes the wall clock as an
#:   injectable constructor default; that seam is the one sanctioned
#:   entry point for real time. Duration timing elsewhere uses inline
#:   ``# repro-lint: disable=DET002`` suppressions so each site carries
#:   its own justification.
#: * ``DET005`` -- ``repro.faults.clock`` is the injectable-clock seam:
#:   ``SystemClock`` is the one place allowed to call ``time.sleep``
#:   for real; everything else must go through a ``Clock``.
#: * ``OBS001`` -- the observability layer itself forwards names it
#:   received as parameters (``Observability.span`` -> ``tracer.span``),
#:   so the literal-name contract is checked at call sites, not inside
#:   the layer. ``repro.cache`` registers its fixed counter family
#:   (``cache_{hits,misses,invalidations}_total``) through a loop over
#:   a module-level literal table, so the names stay grep-able but reach
#:   ``metrics.counter`` via a variable.
DEFAULT_ALLOW: Dict[str, Tuple[str, ...]] = {
    "DET002": ("*/repro/obs/trace.py", "repro/obs/trace.py"),
    "DET005": ("*/repro/faults/clock.py", "repro/faults/clock.py"),
    "OBS001": (
        "*/repro/obs/*.py",
        "repro/obs/*.py",
        "*/repro/cache.py",
        "repro/cache.py",
    ),
}


@dataclass(frozen=True)
class LintConfig:
    """Immutable configuration for one lint run."""

    #: Rule ids to run; empty means "all registered rules".
    select: FrozenSet[str] = frozenset()
    #: Rule ids to skip.
    ignore: FrozenSet[str] = frozenset()
    #: rule id -> path globs where the rule does not apply.
    allow: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW)
    )

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select and rule_id not in self.select:
            return False
        return True

    def rule_allows_path(self, rule_id: str, path: str) -> bool:
        """True if *path* is allowlisted for *rule_id* (rule skipped)."""
        normalized = path.replace("\\", "/")
        for pattern in self.allow.get(rule_id, ()):
            if fnmatch.fnmatch(normalized, pattern):
                return True
        return False


DEFAULT_CONFIG = LintConfig()
