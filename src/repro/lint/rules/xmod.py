"""Cross-module nondeterminism taint (XMOD001 / XMOD002).

The per-file DET rules flag a nondeterminism source at its own call
site, but a wall-clock read two helpers deep behind an innocuous
function escapes them: the file that calls the helper looks clean.
These rules close that gap. Phase 2 seeds taint at every *unsanctioned*
source recorded in the index -- a source is sanctioned where it stands
when a same-line ``# repro-lint: disable=DET00x`` directive covers it
(a reviewed justification) or, for order sources, when ``sorted()``
consumes it directly -- and walks the project call graph backwards
from the result-affecting entry points (`NetographPlatform.run`,
`ToplistCrawler.run`, the streaming engine, `Study` derivations). Any
entry point that transitively reaches a live source is a determinism
leak, and the finding prints the full call chain so the reviewer can
see *how* the clock or RNG reaches the result.

Barrier modules (``repro.obs*``, ``repro.faults.clock``) neither seed
nor propagate taint: they are the sanctioned homes of wall-clock and
randomness, exporting them only through the injected/seeded interfaces
the determinism contract allows.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Iterator, List, Tuple

from repro.lint.index import Program, ProgramContext
from repro.lint.rules.base import (
    ProgramFinding,
    WholeProgramRule,
    register_whole_program,
)


def _matches_any(name: str, patterns) -> bool:
    return any(fnmatchcase(name, pattern) for pattern in patterns)


def entry_functions(program: Program, ctx: ProgramContext) -> List[str]:
    """Qualnames matching the configured entry-point patterns, sorted."""
    patterns = tuple(getattr(ctx.config, "entry_points", ()) or ())
    return sorted(
        qualname
        for qualname in program.functions
        if _matches_any(qualname, patterns)
    )


def _barrier_predicate(ctx: ProgramContext):
    patterns = tuple(getattr(ctx.config, "barrier_modules", ()) or ())

    def skip(module: str) -> bool:
        return _matches_any(module, patterns)

    return skip


def _taint_findings(
    program: Program, ctx: ProgramContext, kind: str
) -> Iterator[ProgramFinding]:
    entries = entry_functions(program, ctx)
    if not entries:
        return
    skip = _barrier_predicate(ctx)
    parents = program.reachable(entries, skip_module=skip)
    emitted = set()
    for qualname in sorted(parents):
        func = program.functions[qualname]
        if skip(func.module):
            continue
        index = program.modules[func.module]
        for source in func.sources:
            if source.kind != kind or source.sanctioned:
                continue
            key = (index.path, source.line, source.col, source.detail)
            if key in emitted:
                continue
            emitted.add(key)
            chain = program.chain(parents, qualname)
            noun = (
                "nondeterministic value source"
                if kind == "value"
                else "filesystem-order source"
            )
            message = (
                f"{noun} {source.detail} is reachable from entry point "
                f"{chain[0]} via call chain: {' -> '.join(chain)}"
            )
            yield (index.path, source.line, source.col, message)


@register_whole_program
class CrossModuleValueTaintRule(WholeProgramRule):
    """Entry points must not transitively reach wall-clock/RNG/hash.

    The reproduction promises bit-identical results across backends and
    re-runs; any unseeded RNG draw, wall-clock read, or salted ``hash()``
    on a path from ``NetographPlatform.run``, ``ToplistCrawler.run``,
    the streaming engine, or a ``Study`` derivation can leak into a
    result. Per-file DET rules only see the source's own file; this
    rule follows the call graph, so a clock read hidden behind two
    helpers in another module is still caught, with the call chain
    printed. Sanction a genuinely result-neutral site with a same-line
    ``# repro-lint: disable=DET002`` (etc.) at the *source*, which both
    silences the per-file rule and stops the taint seed.
    """

    id = "XMOD001"
    summary = (
        "entry point transitively reaches an unsanctioned "
        "nondeterministic value source (wall-clock/RNG/hash)"
    )
    example = (
        "# helpers.py\n"
        "def stamp():\n"
        "    return time.time()     # looks result-neutral...\n"
        "# platform.py\n"
        "def run(self):\n"
        "    row.ts = stamp()       # ...but reaches the result here"
    )

    def check_program(
        self, program: Program, ctx: ProgramContext
    ) -> Iterator[ProgramFinding]:
        return _taint_findings(program, ctx, "value")


@register_whole_program
class CrossModuleOrderTaintRule(WholeProgramRule):
    """Entry points must not transitively depend on filesystem order.

    ``os.listdir`` / ``glob`` / ``Path.iterdir`` return entries in an
    OS-dependent order; iterating them unsorted anywhere on a path from
    a result-affecting entry point makes output ordering depend on the
    machine. The per-file DET004 rule catches direct for-loops over
    these calls; this rule follows call edges so a helper that returns
    an unsorted listing to a distant consumer is caught too. Wrapping
    the producer in ``sorted(...)`` at the source site sanctions it.
    """

    id = "XMOD002"
    summary = (
        "entry point transitively reaches unsorted filesystem-order "
        "iteration"
    )
    example = (
        "# store.py\n"
        "def shard_files(root):\n"
        "    return os.listdir(root)   # OS-dependent order escapes\n"
        "# platform.py: run() -> load_all() -> shard_files()"
    )

    def check_program(
        self, program: Program, ctx: ProgramContext
    ) -> Iterator[ProgramFinding]:
        return _taint_findings(program, ctx, "order")
