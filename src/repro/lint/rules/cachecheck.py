"""Static ``CODE_VERSIONS`` staleness guard (CACHE001 / CACHE002).

The artifact cache keys fingerprints on ``repro.cache.CODE_VERSIONS``:
when a stage's code changes in a result-affecting way, its entry must
be bumped or the cache serves stale artifacts. Until now that bump was
pure reviewer vigilance. This family makes it mechanical:

* ``STAGE_CLOSURES`` (declared next to ``CODE_VERSIONS``) statically
  maps each stage to the modules whose code determines its output.
* Phase 1 computes a *normalized digest* of every module -- docstrings,
  comments and positions stripped -- so formatting-only edits don't
  trip the guard.
* ``cache-versions.lock.json`` (committed) records, per stage, the
  code version and closure digest last reviewed together.

**CACHE001** fires when a stage's closure digest differs from the lock
while its version entry did *not* change: code changed, version didn't
-- the exact forgotten-bump hazard. **CACHE002** fires when the lock
itself is stale (missing, or recorded against a different version):
after bumping a version, or after a consciously result-neutral
refactor, run ``python -m repro.lint --update-lock`` to re-record.

Any module that declares **both** ``CODE_VERSIONS`` and
``STAGE_CLOSURES`` as dict literals is treated as a cache-declaration
module; in this repo that is ``repro.cache``, and fixtures declare
their own.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.index import DictDecl, ModuleIndex, Program, ProgramContext
from repro.lint.rules.base import (
    ProgramFinding,
    WholeProgramRule,
    register_whole_program,
)

#: Default committed lock file name, resolved against the repo root.
LOCK_FILENAME = "cache-versions.lock.json"

LOCK_VERSION = 1


def cache_decl_modules(
    program: Program,
) -> List[Tuple[ModuleIndex, DictDecl, DictDecl]]:
    """Modules declaring both tracked dicts, with their declarations."""
    out = []
    for module in sorted(program.modules):
        index = program.modules[module]
        versions = index.decls.get("CODE_VERSIONS")
        closures = index.decls.get("STAGE_CLOSURES")
        if versions is not None and closures is not None:
            out.append((index, versions, closures))
    return out


def _closure_modules(value) -> Optional[List[str]]:
    if isinstance(value, (list, tuple)) and all(
        isinstance(item, str) for item in value
    ):
        return sorted(set(value))
    return None


def stage_digest(
    program: Program, modules: List[str]
) -> Tuple[str, Dict[str, str], List[str]]:
    """Combined digest for a stage closure.

    Returns ``(digest, per-module digests, missing modules)``. The
    combined digest is order-independent: per-module digests are
    joined sorted by module name.
    """
    import hashlib

    per_module: Dict[str, str] = {}
    missing: List[str] = []
    for name in sorted(set(modules)):
        index = program.modules.get(name)
        if index is None:
            missing.append(name)
        else:
            per_module[name] = index.digest
    joined = "\n".join(f"{name}:{per_module[name]}" for name in sorted(per_module))
    combined = hashlib.sha256(joined.encode("utf-8")).hexdigest()
    return combined, per_module, missing


def build_lock(program: Program) -> Tuple[dict, List[str]]:
    """The lock document for *program*, plus blocking problems.

    Problems (a stage without a version entry, a closure module absent
    from the analyzed tree) make the lock unbuildable for that stage;
    they surface as CACHE001 findings in a normal run.
    """
    stages: Dict[str, dict] = {}
    problems: List[str] = []
    for index, versions, closures in cache_decl_modules(program):
        for stage in sorted(closures.value):
            modules = _closure_modules(closures.value[stage])
            if modules is None:
                problems.append(
                    f"stage '{stage}': STAGE_CLOSURES value must be a "
                    f"list/tuple of module names"
                )
                continue
            if stage not in versions.value:
                problems.append(
                    f"stage '{stage}' has no CODE_VERSIONS entry in "
                    f"{index.module}"
                )
                continue
            digest, per_module, missing = stage_digest(program, modules)
            if missing:
                problems.append(
                    f"stage '{stage}': closure modules not in the "
                    f"analyzed tree: {', '.join(missing)}"
                )
                continue
            stages[stage] = {
                "code_version": versions.value[stage],
                "digest": digest,
                "modules": per_module,
            }
    return {"version": LOCK_VERSION, "stages": stages}, problems


def write_lock(path: Path, lock: dict) -> None:
    """Atomically write *lock* as pretty, sorted, newline-terminated JSON."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(
        json.dumps(lock, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    tmp.replace(path)


def load_lock(path: Path) -> Tuple[Optional[dict], Optional[str]]:
    """``(lock, error)``: the parsed lock or why it couldn't be read."""
    if not path.exists():
        return None, None
    try:
        lock = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return None, f"unreadable ({exc})"
    if not isinstance(lock, dict) or lock.get("version") != LOCK_VERSION:
        return None, "unsupported lock format"
    if not isinstance(lock.get("stages"), dict):
        return None, "unsupported lock format"
    return lock, None


class _StageReport:
    """Shared CACHE001/CACHE002 analysis; computed once per program."""

    def __init__(self, program: Program, ctx: ProgramContext):
        self.declaration_errors: List[ProgramFinding] = []  # CACHE001
        self.staleness: List[ProgramFinding] = []  # CACHE001
        self.lock_errors: List[ProgramFinding] = []  # CACHE002
        decls = cache_decl_modules(program)
        if not decls:
            return
        lock_path = ctx.resolved_lock_path()
        lock: Optional[dict] = None
        lock_error: Optional[str] = None
        if lock_path is None:
            lock_error = "no repo root found to resolve the lock path"
        else:
            lock, lock_error = load_lock(lock_path)
        for index, versions, closures in decls:
            self._check_declarations(program, index, versions, closures)
            locked_stages = (lock or {}).get("stages", {})
            for stage in sorted(closures.value):
                modules = _closure_modules(closures.value[stage])
                if modules is None or stage not in versions.value:
                    continue  # already a declaration error
                digest, _, missing = stage_digest(program, modules)
                if missing:
                    continue  # already a declaration error
                anchor_line = versions.key_lines.get(stage, versions.line)
                current_version = versions.value[stage]
                if lock is None:
                    reason = (
                        lock_error
                        or f"missing ({lock_path})"
                    )
                    self.lock_errors.append(
                        (
                            index.path, anchor_line, 1,
                            f"cache-versions lock is {reason}; run "
                            f"'python -m repro.lint --update-lock' to "
                            f"record stage digests",
                        )
                    )
                    continue
                entry = locked_stages.get(stage)
                if not isinstance(entry, dict):
                    self.lock_errors.append(
                        (
                            index.path, anchor_line, 1,
                            f"stage '{stage}' is not in the cache-versions "
                            f"lock; run --update-lock",
                        )
                    )
                    continue
                locked_version = entry.get("code_version")
                locked_digest = entry.get("digest")
                if locked_version != current_version:
                    self.lock_errors.append(
                        (
                            index.path, anchor_line, 1,
                            f"CODE_VERSIONS['{stage}'] is {current_version} "
                            f"but the lock records {locked_version}; run "
                            f"--update-lock to re-record the reviewed state",
                        )
                    )
                    continue
                if locked_digest != digest:
                    changed = self._changed_modules(program, entry, modules)
                    self.staleness.append(
                        (
                            index.path, anchor_line, 1,
                            f"code for cache stage '{stage}' changed "
                            f"(modules: {', '.join(changed) or 'unknown'}) "
                            f"but CODE_VERSIONS['{stage}'] is still "
                            f"{current_version}; bump it, or run "
                            f"--update-lock if the change is result-neutral",
                        )
                    )

    @staticmethod
    def _changed_modules(
        program: Program, entry: dict, modules: List[str]
    ) -> List[str]:
        locked_modules = entry.get("modules")
        if not isinstance(locked_modules, dict):
            return sorted(modules)
        changed = []
        for name in sorted(set(modules) | set(locked_modules)):
            index = program.modules.get(name)
            current = index.digest if index is not None else None
            if locked_modules.get(name) != current:
                changed.append(name)
        return changed

    def _check_declarations(
        self,
        program: Program,
        index: ModuleIndex,
        versions: DictDecl,
        closures: DictDecl,
    ) -> None:
        for stage in sorted(closures.value):
            anchor = closures.key_lines.get(stage, closures.line)
            modules = _closure_modules(closures.value[stage])
            if modules is None:
                self.declaration_errors.append(
                    (
                        index.path, anchor, 1,
                        f"STAGE_CLOSURES['{stage}'] must be a list/tuple "
                        f"of module names",
                    )
                )
                continue
            if stage not in versions.value:
                self.declaration_errors.append(
                    (
                        index.path, anchor, 1,
                        f"stage '{stage}' is declared in STAGE_CLOSURES "
                        f"but has no CODE_VERSIONS entry",
                    )
                )
            _, _, missing = stage_digest(program, modules)
            for name in missing:
                self.declaration_errors.append(
                    (
                        index.path, anchor, 1,
                        f"stage '{stage}': closure module '{name}' is not "
                        f"in the analyzed tree",
                    )
                )
        for stage in sorted(versions.value):
            if stage not in closures.value:
                anchor = versions.key_lines.get(stage, versions.line)
                self.declaration_errors.append(
                    (
                        index.path, anchor, 1,
                        f"stage '{stage}' is in CODE_VERSIONS but has no "
                        f"STAGE_CLOSURES entry, so its code is not "
                        f"staleness-guarded",
                    )
                )


def _report(program: Program, ctx: ProgramContext) -> _StageReport:
    # One analysis per (program, ctx) pair, shared by both rules.
    cache = getattr(ctx, "_cache_stage_report", None)
    if cache is None:
        cache = _StageReport(program, ctx)
        setattr(ctx, "_cache_stage_report", cache)
    return cache


@register_whole_program
class CacheVersionStalenessRule(WholeProgramRule):
    """Changed cache-stage code requires a ``CODE_VERSIONS`` bump.

    Cache fingerprints include ``CODE_VERSIONS[stage]``; if a stage's
    code changes semantics without a bump, old artifacts keep hitting
    and a longitudinal study silently mixes results from two
    implementations. This rule compares each stage's normalized
    closure digest (docstrings/comments/positions stripped, so
    formatting edits are free) against the committed lock: a digest
    change at an unchanged version is exactly a forgotten bump. Also
    covers declaration hygiene -- every ``CODE_VERSIONS`` stage needs a
    ``STAGE_CLOSURES`` entry and vice versa, and closures must name
    analyzed modules. For a change reviewed as result-neutral, run
    ``--update-lock`` instead of bumping.
    """

    id = "CACHE001"
    summary = (
        "cache-stage code changed without bumping its CODE_VERSIONS "
        "entry (or stage/closure declarations disagree)"
    )
    example = (
        "CODE_VERSIONS = {'adoption': 2}\n"
        "STAGE_CLOSURES = {'adoption': ['repro.analysis.adoption']}\n"
        "# editing adoption.py while 'adoption' stays at 2 -> CACHE001"
    )

    def check_program(
        self, program: Program, ctx: ProgramContext
    ) -> Iterator[ProgramFinding]:
        report = _report(program, ctx)
        for finding in report.declaration_errors:
            yield finding
        for finding in report.staleness:
            yield finding


@register_whole_program
class CacheLockStaleRule(WholeProgramRule):
    """The committed cache-versions lock must match HEAD.

    ``cache-versions.lock.json`` records the (version, digest) pair
    last reviewed for each stage; CACHE001's forgotten-bump check is
    only as good as that record. After bumping a version -- or after a
    result-neutral refactor -- the lock must be re-recorded with
    ``python -m repro.lint --update-lock``; until then this rule fails
    the run. A missing or unreadable lock fails too: an absent record
    guards nothing.
    """

    id = "CACHE002"
    summary = (
        "cache-versions lock is missing or stale relative to "
        "CODE_VERSIONS; run --update-lock"
    )
    example = (
        "CODE_VERSIONS = {'adoption': 3}   # bumped...\n"
        "# ...but cache-versions.lock.json still records version 2"
    )

    def check_program(
        self, program: Program, ctx: ProgramContext
    ) -> Iterator[ProgramFinding]:
        report = _report(program, ctx)
        for finding in report.lock_errors:
            yield finding
