"""Shard-worker shared-state write detection (RACE001 / RACE002).

``ShardExecutor.map_shards`` runs the worker function under three
interchangeable backends. Under the thread backend every worker shares
the interpreter, so a worker that writes a module global or a class
attribute races its siblings -- and because the serial and process
backends don't share that state, the three backends can silently
diverge, breaking the bit-identity guarantee. Today only the
cross-backend regression tests would catch such a write, and only
probabilistically; statically it escapes every per-file rule because
the write looks like ordinary code.

Phase 2 finds every ``map_shards`` call site, resolves its worker
argument to a function, computes the set of functions reachable from
those workers over the project call graph, and flags:

* **RACE001** -- writes to module-level state: ``global`` rebinding,
  subscript/attribute assignment on a module-level name, or an
  in-place mutating call (``.append``, ``.update``, ...) on one.
* **RACE002** -- writes to class attributes (``cls.attr = ...``,
  ``self.__class__.attr = ...``, ``SomeClass.attr = ...``).

Writes to ``self`` instance state are deliberately out of scope: which
instances cross the worker boundary is not statically knowable, and
the shard protocol already requires workers to receive their own task
objects. A worker-side write that is genuinely safe (e.g. an
idempotent memo where racing writers store equal values) is sanctioned
with a same-line ``# repro-lint: disable=RACE001`` and a justifying
comment.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.index import (
    FunctionInfo,
    ModuleIndex,
    Program,
    ProgramContext,
    SharedWrite,
)
from repro.lint.rules.base import (
    ProgramFinding,
    WholeProgramRule,
    register_whole_program,
)


def worker_reachable(
    program: Program,
) -> Tuple[Dict[str, Optional[str]], Dict[str, str]]:
    """Functions reachable from resolved worker entries.

    Returns ``(parents, spawners)``: the BFS parent map over the call
    graph rooted at every worker function, and worker entry ->
    spawning function (for the explanatory message).
    """
    entries = program.worker_entries()
    spawners: Dict[str, str] = {}
    for worker, spawner in entries:
        spawners.setdefault(worker, spawner)
    parents = program.reachable(sorted(spawners))
    return parents, spawners


def _classify(
    program: Program,
    index: ModuleIndex,
    func: FunctionInfo,
    write: SharedWrite,
) -> Optional[Tuple[str, str]]:
    """``(rule_id, target description)`` when *write* hits shared state."""
    base = write.base
    if write.declared_global:
        return "RACE001", f"module global '{base[0]}'"
    first = base[0]
    if first in ("self", "cls"):
        if len(base) >= 2 and base[1] == "__class__":
            target = write.member or ".".join(base[2:]) or "<attr>"
            return "RACE002", f"class attribute '{target}' via self.__class__"
        if first == "cls" and func.first_arg == "cls":
            target = write.member or ".".join(base[1:]) or "<attr>"
            owner = func.owner or "its class"
            return "RACE002", f"class attribute '{target}' on {owner}"
        return None  # instance state: out of scope by design
    if first in func.globals_declared:
        return "RACE001", f"module global '{'.'.join(base)}'"
    if first in func.local_names:
        return None  # local rebinding shadows any module-level name
    fqn = program._expand(index, base)
    if fqn is not None:
        if fqn in program.classes:
            target = write.member or base[-1]
            return "RACE002", f"class attribute '{target}' on {fqn}"
        if first in index.module_names:
            return "RACE001", f"module global '{'.'.join(base)}'"
        if first in index.imports:
            # A name imported from another module: mutating it in place
            # still hits that module's shared object.
            imported = index.imports[first]
            owner_module, _, name = imported.rpartition(".")
            owner = program.modules.get(owner_module)
            if owner is not None and name in owner.module_names:
                return "RACE001", f"imported module global '{imported}'"
            if imported in program.modules and len(base) >= 2:
                owner = program.modules[imported]
                if base[1] in owner.module_names:
                    return (
                        "RACE001",
                        f"module global '{imported}.{'.'.join(base[1:])}'",
                    )
    return None


def _race_findings(
    program: Program, ctx: ProgramContext, rule_id: str
) -> Iterator[ProgramFinding]:
    parents, spawners = worker_reachable(program)
    if not parents:
        return
    emitted = set()
    for qualname in sorted(parents):
        func = program.functions[qualname]
        index = program.modules[func.module]
        for write in func.writes:
            classified = _classify(program, index, func, write)
            if classified is None or classified[0] != rule_id:
                continue
            key = (index.path, write.line, write.col, classified[1])
            if key in emitted:
                continue
            emitted.add(key)
            chain = program.chain(parents, qualname)
            spawner = spawners.get(chain[0], "")
            spawned = f" (spawned by {spawner})" if spawner else ""
            message = (
                f"worker-reachable {write.via} to {classified[1]}; the "
                f"thread backend shares this state across shards. Chain "
                f"from worker entry{spawned}: {' -> '.join(chain)}"
            )
            yield (index.path, write.line, write.col, message)


@register_whole_program
class WorkerGlobalWriteRule(WholeProgramRule):
    """Shard workers must not write module-level state.

    Module globals are shared by every thread-backend worker and
    invisible to process-backend workers after fork/spawn, so a write
    from worker-reachable code either races (threads) or silently
    diverges across backends (processes vs serial). Workers communicate
    results exclusively through their return values; anything else
    breaks the backend-equivalence guarantee the executor tests pin.
    Idempotent memoization where racing writers store equal values may
    be sanctioned with an inline ``# repro-lint: disable=RACE001`` and
    a comment explaining why the race is benign.
    """

    id = "RACE001"
    summary = (
        "worker-reachable function writes a module global (shared "
        "under the thread backend)"
    )
    example = (
        "_SEEN = {}\n"
        "def crawl_shard(task):      # shipped to map_shards\n"
        "    _SEEN[task.day] = 1     # races across thread workers"
    )

    def check_program(
        self, program: Program, ctx: ProgramContext
    ) -> Iterator[ProgramFinding]:
        return _race_findings(program, ctx, "RACE001")


@register_whole_program
class WorkerClassAttributeWriteRule(WholeProgramRule):
    """Shard workers must not write class attributes.

    A class attribute is one interpreter-wide slot: ``cls.counter += 1``
    or ``self.__class__.cache = ...`` from worker-reachable code is a
    shared write under the thread backend exactly like a module global,
    just harder to spot. Keep per-shard state on the task or the
    worker's own instances.
    """

    id = "RACE002"
    summary = (
        "worker-reachable function writes a class attribute (shared "
        "under the thread backend)"
    )
    example = (
        "class Engine:\n"
        "    hits = 0\n"
        "    def detect(self, row):          # worker-reachable\n"
        "        self.__class__.hits += 1    # one shared slot"
    )

    def check_program(
        self, program: Program, ctx: ProgramContext
    ) -> Iterator[ProgramFinding]:
        return _race_findings(program, ctx, "RACE002")
