"""The shipped per-file determinism rules (phase 1).

All checks are syntactic single-pass heuristics: they flag the direct
hazard pattern at the site where it appears and deliberately do not
attempt inter-statement data-flow. Anything a per-file rule cannot see
(a wall-clock read behind a helper in another module, a worker writing
shared state) is the whole-program phase's job (:mod:`~repro.lint.rules.xmod`,
:mod:`~repro.lint.rules.race`, :mod:`~repro.lint.rules.cachecheck`).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.rules.base import (
    RawFinding,
    Rule,
    RuleContext,
    _call_func_name,
    dotted_name,
    register,
)

# ---------------------------------------------------------------------------
# DET001 -- nondeterministic randomness
# ---------------------------------------------------------------------------

#: ``random.<fn>`` calls that draw from the hidden module-level stream.
_MODULE_RANDOM_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)


@register
class UnseededRandomRule(Rule):
    """Randomness must come from an explicitly seeded ``random.Random``.

    The executor's order-independence proof relies on every stochastic
    decision being keyed on ``(seed, url, share_time)``-style derived
    seeds; the module-level stream (and an argument-less ``Random()``,
    which seeds from the OS) reintroduces call-order and run-to-run
    dependence.
    """

    id = "DET001"
    summary = "unseeded random.Random() or module-level random.* call"
    example = "rng = random.Random()          # seeds from the OS\nx = random.randint(1, 6)       # shared hidden stream"

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[RawFinding]:
        name = _call_func_name(node)
        if name is None:
            return
        if name in ("random.Random", "Random"):
            assert isinstance(node, ast.Call)
            if not node.args and not node.keywords:
                yield node, (
                    "random.Random() without a seed argument seeds from "
                    "the OS; derive the seed from the study config instead"
                )
        elif name == "random.SystemRandom":
            yield node, (
                "random.SystemRandom draws OS entropy and can never be "
                "reproduced; use a seeded random.Random"
            )
        else:
            mod, _, fn = name.rpartition(".")
            if mod == "random" and fn in _MODULE_RANDOM_FNS:
                yield node, (
                    f"module-level random.{fn}() uses the shared hidden "
                    "stream; call it on a seeded random.Random instance"
                )


# ---------------------------------------------------------------------------
# DET002 -- wall-clock reads
# ---------------------------------------------------------------------------

#: ``time.<fn>`` reads of a process/OS clock.
_TIME_FNS = frozenset(
    {
        "ctime", "gmtime", "localtime", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time",
        "process_time_ns", "time", "time_ns",
    }
)

#: ``<anything>.now()/.today()/.utcnow()`` -- datetime-style clock reads.
_DATETIME_FNS = frozenset({"now", "today", "utcnow"})


@register
class WallClockRule(Rule):
    """Pipeline code must not read the wall clock.

    Simulated time comes from the study window (``share_time``, crawl
    dates); real time may only enter through the injectable tracer
    clock (allowlisted in :data:`repro.lint.config.DEFAULT_ALLOW`) or a
    site-level suppression justifying a duration measurement.
    """

    id = "DET002"
    summary = "wall-clock read (time.*, datetime.now/today/utcnow)"
    example = "t = time.time()\nnow = datetime.datetime.now()"

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[RawFinding]:
        name = _call_func_name(node)
        if name is None:
            return
        mod, _, fn = name.rpartition(".")
        if mod == "time" and fn in _TIME_FNS:
            yield node, (
                f"time.{fn}() reads a process clock; pipeline results "
                "must be a function of the seed and the study window"
            )
        elif mod and fn in _DATETIME_FNS:
            # Any dotted ``.now()/.today()/.utcnow()`` call: catches
            # datetime.now, datetime.datetime.now, dt.date.today, ...
            yield node, (
                f"{name}() reads the wall clock; derive dates from the "
                "study window instead"
            )


# ---------------------------------------------------------------------------
# DET003 -- salted built-in hash()
# ---------------------------------------------------------------------------


@register
class SaltedHashRule(Rule):
    """Built-in ``hash()`` is salted per process for str/bytes.

    ``PYTHONHASHSEED`` randomises it, so any bucketing or ordering
    derived from ``hash()`` differs between runs and between shard
    worker processes. Use ``zlib.crc32`` (as ``website.py`` does for
    subsite CMP coverage) or ``hashlib`` for stable digests.
    """

    id = "DET003"
    summary = "built-in hash() is process-salted; use crc32/hashlib"
    example = 'bucket = hash(domain) % 64'

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[RawFinding]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ):
            yield node, (
                "built-in hash() is salted per process (PYTHONHASHSEED); "
                "use zlib.crc32 or hashlib for a stable digest"
            )


# ---------------------------------------------------------------------------
# DET004 -- unordered iteration reaching loops / materialisations / returns
# ---------------------------------------------------------------------------

#: Callees producing unordered (or filesystem-ordered) collections.
_UNORDERED_CALLS = {
    "set": "set()",
    "frozenset": "frozenset()",
    "os.listdir": "os.listdir()",
    "os.scandir": "os.scandir()",
    "glob.glob": "glob.glob()",
    "glob.iglob": "glob.iglob()",
}

#: Method names producing unordered/filesystem-ordered results.
_UNORDERED_METHODS = {
    "iterdir": "Path.iterdir()",
    "glob": ".glob()",
    "rglob": ".rglob()",
}

#: Wrappers that make consuming an unordered collection safe: they are
#: order-insensitive aggregates or impose an order themselves.
_NEUTRAL_CALLS = frozenset(
    {"all", "any", "bool", "frozenset", "len", "max", "min", "set",
     "sorted", "sum"}
)

#: Wrappers that freeze whatever arbitrary order the producer emitted.
_MATERIALIZERS = frozenset({"iter", "list", "tuple"})


def _unordered_reason(node: ast.AST) -> Optional[str]:
    """Human label if *node* produces an unordered collection."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    name = _call_func_name(node)
    if name in _UNORDERED_CALLS:
        return _UNORDERED_CALLS[name]
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _UNORDERED_METHODS
        and not node.args
        and not node.keywords
    ):
        return _UNORDERED_METHODS[node.func.attr]
    return None


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
    )


@register
class UnorderedIterationRule(Rule):
    """Unordered producers must be ``sorted(...)`` before their order
    can matter.

    Flags a set literal/comprehension, ``set()``/``frozenset()`` call,
    ``os.listdir``/``os.scandir``/glob result at the point where an
    arbitrary order is *observed or frozen*: used directly as a loop or
    comprehension source, or materialised via ``list``/``tuple``/
    ``iter``/``str.join``. Returning a set-typed value is fine -- it
    stays explicitly unordered and the consumer site gets linted
    instead. ``dict.keys()`` however is an insertion-ordered view, so
    returning/yielding one silently promises an order the builder may
    not control; that escape must be ``sorted(...)``.
    Order-insensitive consumers (``len``, ``min``, ``sum``, membership
    tests, ``sorted`` itself, set-to-set conversions) are not flagged.
    """

    id = "DET004"
    summary = "unordered iteration (set/keys/listdir/glob) without sorted()"
    example = "for name in os.listdir(path):  # filesystem order\n    process(name)"

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[RawFinding]:
        reason = _unordered_reason(node)
        if reason is not None:
            context = self._flagged_context(node, ctx)
            if context is not None:
                yield node, (
                    f"iteration order of {reason} is not deterministic "
                    f"here ({context}); wrap it in sorted(...)"
                )
        elif _is_keys_call(node) and self._escapes(node, ctx):
            yield node, (
                "dict.keys() returned to the caller leaks insertion "
                "order into whatever they export; return "
                "sorted(...) instead"
            )

    def _flagged_context(
        self, node: ast.AST, ctx: RuleContext
    ) -> Optional[str]:
        parent = ctx.parent()
        if parent is None:
            return None
        if isinstance(parent, ast.For) and parent.iter is node:
            return "for-loop source"
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            return "comprehension source"
        if isinstance(parent, ast.Call) and node in parent.args:
            callee = dotted_name(parent.func)
            if callee in _NEUTRAL_CALLS:
                return None
            if callee in _MATERIALIZERS:
                return f"materialised by {callee}()"
            if (
                isinstance(parent.func, ast.Attribute)
                and parent.func.attr == "join"
            ):
                return "joined into a string"
        return None

    def _escapes(self, node: ast.AST, ctx: RuleContext) -> bool:
        """True if a ``.keys()`` result reaches a return/yield, possibly
        through order-freezing wrappers like ``list``/``tuple``/``iter``."""
        child: ast.AST = node
        for depth in range(1, len(ctx.parents) + 1):
            parent = ctx.parent(depth)
            if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
                return parent.value is child
            if isinstance(parent, ast.Call) and child in parent.args:
                callee = dotted_name(parent.func)
                if callee in _MATERIALIZERS:
                    child = parent
                    continue
                return False  # sorted()/len()/... neutralise the escape
            return False
        return False


# ---------------------------------------------------------------------------
# DET005 -- bare time.sleep outside the injectable-clock seam
# ---------------------------------------------------------------------------


@register
class BareSleepRule(Rule):
    """Backoff waits must run through an injectable clock.

    A literal ``time.sleep`` in pipeline code makes every chaos/retry
    test pay the wait for real and hides the delay from the virtual
    clock's accounting. The one sanctioned call site is
    ``repro.faults.clock.SystemClock`` (allowlisted in
    :data:`repro.lint.config.DEFAULT_ALLOW`); everything else takes a
    :class:`~repro.faults.clock.Clock` and calls ``clock.sleep(...)``,
    which this rule deliberately does not match.
    """

    id = "DET005"
    summary = "bare time.sleep(); route waits through an injectable Clock"
    example = "time.sleep(backoff_seconds)"

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[RawFinding]:
        name = _call_func_name(node)
        if name == "time.sleep" or name == "sleep":
            yield node, (
                "bare sleep blocks for real and bypasses the virtual "
                "clock; accept a repro.faults.Clock and call "
                "clock.sleep(...) instead"
            )


# ---------------------------------------------------------------------------
# MUT001 -- mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CTORS = frozenset(
    {
        "bytearray", "collections.OrderedDict", "collections.defaultdict",
        "collections.deque", "defaultdict", "deque", "dict", "list", "set",
    }
)


def _is_mutable_default(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return _call_func_name(node) in _MUTABLE_CTORS


@register
class MutableDefaultRule(Rule):
    """Mutable default arguments are shared across calls.

    One call's mutation leaks into the next -- classic action-at-a-
    distance that makes results depend on call history. Use ``None``
    and construct inside the function.
    """

    id = "MUT001"
    summary = "mutable default argument"
    example = "def crawl(urls, seen=[]):  # shared across calls\n    ..."

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[RawFinding]:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield default, (
                    f"mutable default argument in {node.name}() is shared "
                    "across calls; default to None and construct inside"
                )


# ---------------------------------------------------------------------------
# OBS001 -- obs metric/span names must be string literals
# ---------------------------------------------------------------------------

#: ``repro.obs`` factory/entry methods whose first argument is a name.
_OBS_NAME_METHODS = frozenset(
    {"counter", "event", "gauge", "histogram", "span"}
)


@register
class ObsLiteralNameRule(Rule):
    """Metric and span names must be string literals at the call site.

    Literal names keep the JSONL exports byte-stable across runs and
    make every series grep-able from the source tree. Variable labels
    belong in label kwargs (``.inc(cmp=...)``), never in the name.
    """

    id = "OBS001"
    summary = "repro.obs metric/span name must be a string literal"
    example = 'obs.metrics.counter(f"crawl_{phase}_total")  # f-string name'

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[RawFinding]:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _OBS_NAME_METHODS
        ):
            return
        if not node.args:
            return  # wrong arity; not this rule's business
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return
        kind = "f-string" if isinstance(first, ast.JoinedStr) else "non-literal"
        yield first, (
            f"{kind} name passed to .{node.func.attr}(); obs names must "
            "be string literals (put variable parts in label kwargs)"
        )
