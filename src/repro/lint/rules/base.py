"""Rule protocol and the two rule registries.

The linter runs in two phases, each with its own registry:

* **Per-file rules** (:data:`RULES`) see one module's AST at a time.
  The engine walks each tree exactly once and offers every node to
  every enabled rule; rules filter by node type themselves. These are
  syntactic single-pass heuristics: they flag the direct hazard
  pattern at the site where it appears.
* **Whole-program rules** (:data:`WHOLE_PROGRAM_RULES`) run after all
  files are parsed, over the merged per-module index
  (:class:`repro.lint.index.Program`): call-graph taint propagation,
  worker-reachability, cache-version staleness. Anything that needs to
  see more than one file at a time lives here.

Register with :func:`register` / :func:`register_whole_program`; the
engine picks new rules up automatically. Every rule carries a
``rationale`` (why the contract needs it) and an ``example`` (a
minimal offending snippet), surfaced by ``--explain RULE``.
"""

from __future__ import annotations

import ast
import textwrap
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.index import Program, ProgramContext

#: A rule hit before position stamping: (offending node, message).
RawFinding = Tuple[ast.AST, str]

#: A whole-program rule hit: (path, line, col, message). Whole-program
#: rules anchor findings themselves because the offending location may
#: be in any analyzed file, not the one currently being walked.
ProgramFinding = Tuple[str, int, int, str]


class RuleContext:
    """What a per-file rule may inspect besides the node itself."""

    __slots__ = ("path", "parents")

    def __init__(self, path: str, parents: Tuple[ast.AST, ...]):
        self.path = path
        #: Ancestor chain, outermost first, innermost (direct parent) last.
        self.parents = parents

    def parent(self, depth: int = 1) -> Optional[ast.AST]:
        """The *depth*-th enclosing node (1 = direct parent)."""
        if depth <= len(self.parents):
            return self.parents[-depth]
        return None


class Rule:
    """Base class for per-file (phase 1) lint rules."""

    id: str = ""
    summary: str = ""
    #: Minimal offending snippet, shown by ``--explain``.
    example: str = ""

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[RawFinding]:
        raise NotImplementedError
        yield  # pragma: no cover

    @property
    def rationale(self) -> str:
        """Why the contract needs this rule (the class docstring)."""
        doc = type(self).__doc__ or ""
        return textwrap.dedent("    " + doc).strip()


class WholeProgramRule:
    """Base class for whole-program (phase 2) lint rules.

    ``check_program`` receives the merged :class:`~repro.lint.index.Program`
    plus a :class:`~repro.lint.index.ProgramContext` (config, repo root,
    lock path) and yields position-anchored findings. Inline
    suppressions and per-rule path allowlists apply to these findings
    exactly as they do to per-file ones -- the engine resolves both
    after phase 2.
    """

    id: str = ""
    summary: str = ""
    example: str = ""

    def check_program(
        self, program: "Program", ctx: "ProgramContext"
    ) -> Iterator[ProgramFinding]:
        raise NotImplementedError
        yield  # pragma: no cover

    @property
    def rationale(self) -> str:
        doc = type(self).__doc__ or ""
        return textwrap.dedent("    " + doc).strip()


#: Registry of per-file rules, keyed by rule id, in registration order.
RULES: Dict[str, Rule] = {}

#: Registry of whole-program rules, keyed by rule id.
WHOLE_PROGRAM_RULES: Dict[str, WholeProgramRule] = {}


def _validated(rule) -> None:
    if not rule.id or not rule.id.isupper():
        raise ValueError(f"rule {type(rule).__name__} needs an uppercase id")
    if rule.id in RULES or rule.id in WHOLE_PROGRAM_RULES:
        raise ValueError(f"duplicate rule id {rule.id}")


def register(cls):
    """Class decorator adding a per-file rule to :data:`RULES`."""
    rule = cls()
    _validated(rule)
    RULES[rule.id] = rule
    return cls


def register_whole_program(cls):
    """Class decorator adding a rule to :data:`WHOLE_PROGRAM_RULES`."""
    rule = cls()
    _validated(rule)
    WHOLE_PROGRAM_RULES[rule.id] = rule
    return cls


def all_rule_ids() -> List[str]:
    """Every registered rule id, per-file first, registration order."""
    return list(RULES) + list(WHOLE_PROGRAM_RULES)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_func_name(node: ast.AST) -> Optional[str]:
    """Dotted callee name if *node* is a Call, else None."""
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    return None
