"""Lint rules, split by phase.

``base`` defines the :class:`Rule` / :class:`WholeProgramRule`
protocols and the two registries; ``perfile`` holds the single-pass
per-file rules (DET/MUT/OBS); ``xmod``, ``race`` and ``cachecheck``
hold the whole-program families (XMOD/RACE/CACHE). Importing this
package imports every rule module so registration side effects run.

This package replaces the old single ``repro.lint.rules`` module; the
public names it exported are re-exported here unchanged.
"""

from repro.lint.rules.base import (
    RULES,
    WHOLE_PROGRAM_RULES,
    ProgramFinding,
    RawFinding,
    Rule,
    RuleContext,
    WholeProgramRule,
    all_rule_ids,
    dotted_name,
    register,
    register_whole_program,
)
from repro.lint.rules import perfile  # noqa: F401  (registers DET/MUT/OBS)
from repro.lint.rules import xmod  # noqa: F401  (registers XMOD)
from repro.lint.rules import race  # noqa: F401  (registers RACE)
from repro.lint.rules import cachecheck  # noqa: F401  (registers CACHE)

__all__ = [
    "ProgramFinding",
    "RawFinding",
    "Rule",
    "RuleContext",
    "RULES",
    "WHOLE_PROGRAM_RULES",
    "WholeProgramRule",
    "all_rule_ids",
    "dotted_name",
    "register",
    "register_whole_program",
]
