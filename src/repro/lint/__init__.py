"""``repro.lint`` -- the two-phase determinism & contract analyzer.

The reproduction rests on a determinism contract: crawl outcomes are
order-independent (per-event RNGs keyed on ``(seed, url, share_time)``)
and bit-identical across re-runs, backends and cache hits, with or
without observability. That contract is easy to break silently -- one
``random.random()``, one ``datetime.now()`` two helpers deep, one
worker writing a module global -- and regression tests only catch the
breakage after the fact, on whichever code path they happen to
exercise.

``repro.lint`` enforces the contract *statically*, in two phases:

* **Phase 1** walks each file once, running the per-file rules and
  emitting a per-module index (functions, classes, imports, call
  edges, nondeterminism sources, shared writes, spawn sites, and a
  normalized code digest -- :mod:`repro.lint.index`).
* **Phase 2** merges the indexes into a whole-program view and runs
  the cross-module analyses: call-graph nondeterminism taint (XMOD),
  shard-worker shared-state writes (RACE), and the static
  ``CODE_VERSIONS`` staleness guard against the committed
  ``cache-versions.lock.json`` (CACHE).

Both phases share the suppression (:mod:`repro.lint.suppress`),
baseline (:mod:`repro.lint.baseline`), reporter and exit-code
machinery, and the CLI::

    python -m repro.lint                  # both phases, repo-root paths
    python -m repro.lint --explain XMOD001
    python -m repro.lint --update-lock    # re-record the cache lock

Shipped rules (``--list-rules`` / ``--explain RULE``):

========  ========================================================
DET001    unseeded ``random.Random()`` / module-level ``random.*``
DET002    wall-clock reads outside the explicit allowlist
DET003    built-in ``hash()`` (salted per process for str/bytes)
DET004    unordered iteration (set / ``dict.keys()`` /
          ``os.listdir`` / glob) reaching loops or returns
DET005    ``time.sleep`` outside the injectable-clock seam
MUT001    mutable default arguments
OBS001    ``repro.obs`` metric/span names must be string literals
XMOD001   entry point transitively reaches a wall-clock/RNG/hash
          source (with the explanatory call chain)
XMOD002   entry point transitively reaches unsorted FS-order
          iteration
RACE001   shard-worker-reachable write to a module global
RACE002   shard-worker-reachable write to a class attribute
CACHE001  cache-stage code changed without a ``CODE_VERSIONS`` bump
CACHE002  ``cache-versions.lock.json`` missing or stale
PARSE001  file does not parse (emitted by the engine itself)
SUP001    unused inline suppression (emitted by the engine itself)
========  ========================================================
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import (
    Finding,
    LintResult,
    analyze_paths,
    lint_paths,
    lint_source,
)
from repro.lint.index import Program, ProgramContext
from repro.lint.rules import (
    RULES,
    WHOLE_PROGRAM_RULES,
    Rule,
    WholeProgramRule,
)

__all__ = [
    "Baseline",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintResult",
    "Program",
    "ProgramContext",
    "RULES",
    "Rule",
    "WHOLE_PROGRAM_RULES",
    "WholeProgramRule",
    "analyze_paths",
    "lint_paths",
    "lint_source",
]
