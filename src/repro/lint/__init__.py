"""``repro.lint`` -- the determinism & contract linter.

The reproduction rests on a determinism contract: crawl outcomes are
order-independent (per-event RNGs keyed on ``(seed, url, share_time)``)
and bit-identical across re-runs, with or without observability. That
contract is easy to break silently -- one ``random.random()``, one
``datetime.now()``, one iteration over an unsorted ``set`` that reaches
an export -- and regression tests only catch the breakage after the
fact, on whichever code path they happen to exercise.

``repro.lint`` enforces the contract *statically*: a single-pass AST
rule engine (:mod:`repro.lint.engine`) with a pluggable rule registry
(:mod:`repro.lint.rules`), inline suppressions with unused-suppression
detection (:mod:`repro.lint.suppress`), a committed baseline for
grandfathered findings (:mod:`repro.lint.baseline`), text and JSON
reporters (:mod:`repro.lint.reporters`) and a CLI::

    python -m repro.lint src scripts

Shipped rules (see :data:`repro.lint.rules.RULES`):

======  ==========================================================
DET001  unseeded ``random.Random()`` / module-level ``random.*``
DET002  wall-clock reads outside the explicit allowlist
DET003  built-in ``hash()`` (salted per process for str/bytes)
DET004  unordered iteration (set / ``dict.keys()`` / ``os.listdir``
        / glob) reaching loops, materialisations or returns
MUT001  mutable default arguments
OBS001  ``repro.obs`` metric/span names must be string literals
SUP001  unused inline suppression (emitted by the engine itself)
======  ==========================================================
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import Finding, LintResult, lint_paths, lint_source
from repro.lint.rules import RULES, Rule

__all__ = [
    "Baseline",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintResult",
    "RULES",
    "Rule",
    "lint_paths",
    "lint_source",
]
