"""``python -m repro.lint [paths]`` -- the analyzer's command line.

Exit codes:

* ``0`` -- clean (every finding baselined or suppressed with a used
  directive);
* ``1`` -- new findings, unused suppressions, or files that do not
  parse;
* ``2`` -- usage error (unknown rule selector, missing path, bad
  baseline, unbuildable lock).

Default paths, the committed baseline, and the cache-versions lock are
all resolved against the **repo root** -- the nearest directory with a
``pyproject.toml``, found by walking up from the current directory and
falling back to the installed package location -- so the run produces
identical results from any cwd.

``--select`` / ``--ignore`` accept exact ids (``DET002``) and family
prefixes (``DET``, ``XMOD``, ``RACE``, ``CACHE``). ``--explain RULE``
prints a rule's rationale and a minimal offending example.
``--update-lock`` re-records ``cache-versions.lock.json`` from the
current tree after a reviewed ``CODE_VERSIONS`` change.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, List, Optional

from repro.lint.baseline import Baseline
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import analyze_paths
from repro.lint.reporters import REPORTERS
from repro.lint.rules import RULES, WHOLE_PROGRAM_RULES, all_rule_ids
from repro.lint.rules.cachecheck import LOCK_FILENAME, build_lock, write_lock

#: Default target set: the pipeline sources and the repo's scripts.
DEFAULT_PATHS = ("src", "scripts")

#: Committed baseline of grandfathered findings (empty in this repo).
DEFAULT_BASELINE = "lint-baseline.json"


def find_repo_root(start: Optional[Path] = None) -> Optional[Path]:
    """Nearest ancestor with a ``pyproject.toml``.

    Walks up from *start* (default: cwd); if nothing is found -- e.g.
    the linter runs from an unrelated scratch directory -- falls back
    to walking up from this installed package, which lives inside the
    checkout in this repo's src layout.
    """
    bases = [start or Path.cwd(), Path(__file__).resolve().parent]
    for base in bases:
        current = base.resolve()
        for candidate in [current, *current.parents]:
            if (candidate / "pyproject.toml").is_file():
                return candidate
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Two-phase determinism & contract analyzer.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: "
        f"{' '.join(DEFAULT_PATHS)} under the repo root)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file of grandfathered findings (default: "
        f"{DEFAULT_BASELINE} at the repo root; missing file = empty)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--lock",
        default=None,
        help="cache-versions lock file (default: "
        f"{LOCK_FILENAME} at the repo root)",
    )
    parser.add_argument(
        "--update-lock",
        action="store_true",
        help="re-record the cache-versions lock from the current tree "
        "and exit (after a reviewed CODE_VERSIONS change)",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule ids or family prefixes to run "
        "(e.g. DET002,XMOD,CACHE; default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        help="comma-separated rule ids or family prefixes to skip",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print a rule's rationale and example, then exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _parse_rule_set(raw: str) -> frozenset:
    return frozenset(
        part.strip().upper() for part in raw.split(",") if part.strip()
    )


def _unknown_selectors(selectors: frozenset) -> List[str]:
    known = all_rule_ids()
    return sorted(
        selector
        for selector in selectors
        if not any(
            rule_id == selector or rule_id.startswith(selector)
            for rule_id in known
        )
    )


def _explain(rule_id: str, out: IO[str], err: IO[str]) -> int:
    rule = RULES.get(rule_id) or WHOLE_PROGRAM_RULES.get(rule_id)
    if rule is None:
        err.write(f"error: unknown rule id: {rule_id}\n")
        return 2
    phase = "per-file" if rule_id in RULES else "whole-program"
    out.write(f"{rule.id} ({phase}): {rule.summary}\n\n")
    out.write(rule.rationale + "\n")
    if rule.example:
        out.write("\nExample:\n")
        for line in rule.example.splitlines():
            out.write(f"    {line}\n")
    return 0


def main(
    argv: Optional[List[str]] = None,
    out: IO[str] = sys.stdout,
    err: IO[str] = sys.stderr,
) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_id, rule in RULES.items():
            out.write(f"{rule_id}  [file]     {rule.summary}\n")
        for rule_id, rule in WHOLE_PROGRAM_RULES.items():
            out.write(f"{rule_id}  [program]  {rule.summary}\n")
        return 0

    if options.explain:
        return _explain(options.explain.strip().upper(), out, err)

    select = _parse_rule_set(options.select)
    ignore = _parse_rule_set(options.ignore)
    unknown = _unknown_selectors(select | ignore)
    if unknown:
        err.write(f"error: unknown rule id(s): {', '.join(unknown)}\n")
        return 2

    root = find_repo_root()
    if options.paths:
        paths = [Path(p) for p in options.paths]
    elif root is not None:
        paths = [root / p for p in DEFAULT_PATHS if (root / p).exists()]
    else:
        paths = [Path(p) for p in DEFAULT_PATHS if Path(p).exists()]
    missing = [str(p) for p in paths if not p.exists()]
    if missing or not paths:
        err.write(
            "error: no such path(s): " + ", ".join(missing) + "\n"
            if missing
            else "error: nothing to lint\n"
        )
        return 2

    if options.baseline is not None:
        baseline_path = Path(options.baseline)
    elif root is not None:
        baseline_path = root / DEFAULT_BASELINE
    else:
        baseline_path = Path(DEFAULT_BASELINE)
    lock_path = Path(options.lock) if options.lock else None

    config = LintConfig(
        select=select, ignore=ignore, allow=dict(DEFAULT_CONFIG.allow)
    )
    result, program, ctx = analyze_paths(
        paths, config, root=root, lock_path=lock_path
    )

    if options.update_lock:
        lock, problems = build_lock(program)
        for problem in problems:
            err.write(f"error: {problem}\n")
        if problems:
            return 2
        target = ctx.resolved_lock_path()
        if target is None:
            err.write("error: no repo root found to place the lock\n")
            return 2
        write_lock(target, lock)
        out.write(
            f"recorded {len(lock['stages'])} stage(s) to {target}\n"
        )
        return 0

    if options.write_baseline:
        baseline = Baseline.from_findings(result.findings)
        baseline.write(baseline_path)
        out.write(
            f"wrote {len(baseline)} finding(s) to {baseline_path}\n"
        )
        return 0

    try:
        baseline = Baseline.load(baseline_path)
    except (ValueError, KeyError) as exc:
        err.write(f"error: bad baseline {baseline_path}: {exc}\n")
        return 2
    new_findings, baselined = baseline.apply(result.sorted_findings())

    REPORTERS[options.format](result, new_findings, baselined, out)
    return 1 if new_findings else 0
