"""``python -m repro.lint [paths]`` -- the linter's command line.

Exit codes:

* ``0`` -- clean (every finding baselined or suppressed with a used
  directive);
* ``1`` -- new findings, unused suppressions, or files that do not
  parse;
* ``2`` -- usage error (unknown rule id, missing path, bad baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, List, Optional

from repro.lint.baseline import Baseline
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import lint_paths
from repro.lint.reporters import REPORTERS
from repro.lint.rules import RULES

#: Default target set: the pipeline sources and the repo's scripts.
DEFAULT_PATHS = ("src", "scripts")

#: Committed baseline of grandfathered findings (empty in this repo).
DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism & contract linter.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE}; missing file = empty baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _parse_rule_set(raw: str) -> frozenset:
    return frozenset(
        part.strip().upper() for part in raw.split(",") if part.strip()
    )


def main(
    argv: Optional[List[str]] = None,
    out: IO[str] = sys.stdout,
    err: IO[str] = sys.stderr,
) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_id, rule in RULES.items():
            out.write(f"{rule_id}  {rule.summary}\n")
        return 0

    select = _parse_rule_set(options.select)
    ignore = _parse_rule_set(options.ignore)
    unknown = (select | ignore) - set(RULES)
    if unknown:
        err.write(f"error: unknown rule id(s): {', '.join(sorted(unknown))}\n")
        return 2

    raw_paths = options.paths or [
        p for p in DEFAULT_PATHS if Path(p).exists()
    ]
    paths = [Path(p) for p in raw_paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing or not paths:
        err.write(
            "error: no such path(s): " + ", ".join(missing) + "\n"
            if missing
            else "error: nothing to lint\n"
        )
        return 2

    config = LintConfig(
        select=select, ignore=ignore, allow=dict(DEFAULT_CONFIG.allow)
    )
    result = lint_paths(paths, config)

    if options.write_baseline:
        baseline = Baseline.from_findings(result.findings)
        baseline.write(options.baseline)
        out.write(
            f"wrote {len(baseline)} finding(s) to {options.baseline}\n"
        )
        return 0

    try:
        baseline = Baseline.load(options.baseline)
    except (ValueError, KeyError) as exc:
        err.write(f"error: bad baseline {options.baseline}: {exc}\n")
        return 2
    new_findings, baselined = baseline.apply(result.sorted_findings())

    REPORTERS[options.format](result, new_findings, baselined, out)
    return 1 if new_findings else 0
