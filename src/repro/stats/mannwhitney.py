"""Mann-Whitney U test.

A from-scratch implementation of the two-sided Mann-Whitney U test with
midranks for ties, the tie-corrected variance, and a continuity-corrected
normal approximation -- matching how the paper reports its results, e.g.
``U(N_accept=1344, N_reject=279) = 166582, z = -2.93, p < 0.01``
(Section 4.3).

The test statistic reported is ``U1``, the U of the *first* sample; the
z-score is computed from ``min(U1, U2)`` so its sign conventionally
indicates which sample is stochastically smaller.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class MannWhitneyResult:
    """Outcome of a two-sided Mann-Whitney U test."""

    u1: float
    u2: float
    n1: int
    n2: int
    z: float
    p_value: float

    @property
    def u(self) -> float:
        """The conventional test statistic ``min(U1, U2)``."""
        return min(self.u1, self.u2)

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _rankdata(values: Sequence[float]) -> list:
    """Midranks of *values* (average rank for ties)."""
    indexed = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(indexed):
        j = i
        while (
            j + 1 < len(indexed)
            and values[indexed[j + 1]] == values[indexed[i]]
        ):
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[indexed[k]] = midrank
        i = j + 1
    return ranks


def _norm_sf(z: float) -> float:
    """Standard normal survival function via the complementary error
    function (no scipy dependency)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def mann_whitney_u(
    sample1: Sequence[float],
    sample2: Sequence[float],
    *,
    use_continuity: bool = True,
) -> MannWhitneyResult:
    """Two-sided Mann-Whitney U test of two independent samples.

    Degenerate inputs -- an empty sample, or every value identical
    across both samples -- have no evidence against the null, so they
    yield ``z = 0`` and ``p = 1`` instead of raising. (Both cases occur
    in practice when a study is scaled down far enough that a CMP has no
    adopters, or when all interaction rates tie; a batch analysis over
    many CMPs must not die on the sparse ones.)
    """
    n1, n2 = len(sample1), len(sample2)
    if n1 == 0 or n2 == 0:
        # No observations on one side: U1 = U2 = 0 and the null cannot
        # be rejected. Previously a ZeroDivisionError path (n*(n-1)).
        return MannWhitneyResult(
            u1=0.0, u2=0.0, n1=n1, n2=n2, z=0.0, p_value=1.0
        )
    combined = list(sample1) + list(sample2)
    ranks = _rankdata(combined)
    r1 = sum(ranks[:n1])
    u1 = r1 - n1 * (n1 + 1) / 2.0
    u2 = n1 * n2 - u1

    # Tie-corrected variance.
    tie_counts = Counter(combined).values()
    n = n1 + n2
    tie_term = sum(t**3 - t for t in tie_counts)
    var = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var <= 0:
        # All values tie: every rank is the shared midrank, U1 = U2 =
        # n1*n2/2, and the variance vanishes. The samples are
        # indistinguishable, not erroneous.
        return MannWhitneyResult(
            u1=u1, u2=u2, n1=n1, n2=n2, z=0.0, p_value=1.0
        )

    mean = n1 * n2 / 2.0
    u_min = min(u1, u2)
    # Continuity correction shrinks the numerator towards zero but never
    # flips its sign (matching scipy's asymptotic two-sided method).
    correction = 0.5 if use_continuity else 0.0
    z = min(0.0, u_min - mean + correction) / math.sqrt(var)
    p = 2.0 * _norm_sf(abs(z))
    return MannWhitneyResult(
        u1=u1, u2=u2, n1=n1, n2=n2, z=z, p_value=min(1.0, p)
    )
