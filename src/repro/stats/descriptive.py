"""Descriptive statistics and bootstrap confidence intervals."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (same convention as numpy)."""
    if not values:
        raise ValueError("empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def median(values: Sequence[float]) -> float:
    """The sample median."""
    return quantile(values, 0.5)


@dataclass(frozen=True)
class FiveNumberSummary:
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def five_number_summary(values: Sequence[float]) -> FiveNumberSummary:
    """Min / Q1 / median / Q3 / max, the basis of the paper's box plots
    (Figure 10)."""
    return FiveNumberSummary(
        minimum=quantile(values, 0.0),
        q1=quantile(values, 0.25),
        median=quantile(values, 0.5),
        q3=quantile(values, 0.75),
        maximum=quantile(values, 1.0),
    )


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = median,
    *,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for *statistic*."""
    if not values:
        raise ValueError("empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = random.Random(seed)
    n = len(values)
    estimates = []
    for _ in range(n_resamples):
        resample = [values[rng.randrange(n)] for _ in range(n)]
        estimates.append(statistic(resample))
    alpha = (1.0 - confidence) / 2.0
    return quantile(estimates, alpha), quantile(estimates, 1.0 - alpha)
