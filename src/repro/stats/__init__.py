"""Statistics used by the paper's analyses.

* :mod:`repro.stats.mannwhitney` -- the Mann-Whitney *U* test (with tie
  correction and normal approximation), the nonparametric test the paper
  uses for the dialog-timing comparisons because it is "robust to skewed
  distributions" (Section 4.3). Implemented from scratch and validated
  against scipy in the test suite.
* :mod:`repro.stats.descriptive` -- medians, quantiles and bootstrap
  confidence intervals for the reported summary numbers.
"""

from repro.stats.descriptive import (
    bootstrap_ci,
    five_number_summary,
    median,
    quantile,
)
from repro.stats.mannwhitney import MannWhitneyResult, mann_whitney_u

__all__ = [
    "mann_whitney_u",
    "MannWhitneyResult",
    "median",
    "quantile",
    "five_number_summary",
    "bootstrap_ci",
]
