"""Cheap keyed deterministic randomness for the crawl hot path.

Every crawl-phase decision in this system is keyed, never sequential:
the vantage assignment, the queue delay, and each page render derive
all their randomness from a stable key such as ``(seed, url, share
time)``, so outcomes are independent of execution order -- the property
that makes serial, thread and process runs bit-identical.

The original implementation built a fresh ``random.Random`` per key,
which costs ~10us in seeding alone (the Mersenne Twister state is 2500
bytes initialized through ``hashlib``). At columnar-crawl throughput
targets that is the whole per-crawl budget, so this module provides the
cheap equivalent: a 64-bit key built by CRC-folding the key parts
(:func:`key64`) and a counter-based generator (:class:`KeyedRand`)
whose draws are splitmix64 finalizer outputs -- a few integer
operations each, no large state, no allocation beyond the generator
object itself.

Quality notes:

* splitmix64 passes BigCrush as a bare counter mixer; it is more than
  strong enough for the Bernoulli/uniform decisions the crawl path
  makes. It is of course not cryptographic.
* :func:`key64` folds strings through CRC32 (32 bits per part). Two
  distinct multi-part keys collide with probability ~2**-64 after
  mixing; two *single string parts* collide at the CRC32 birthday
  bound, which at this system's scales (tens of thousands of distinct
  URLs per run) is negligible -- and a collision would only correlate
  two visits' draws, never corrupt a result.
"""

from __future__ import annotations

import math
import zlib
from typing import Sequence

_MASK = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15

__all__ = ["mix64", "key64", "fold64", "KeyedRand"]


def mix64(x: int) -> int:
    """The splitmix64 finalizer: a 64-bit bijective avalanche mix."""
    x &= _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def key64(*parts: object) -> int:
    """Fold *parts* (ints and strings) into one 64-bit stream key.

    The fold is order-sensitive and avalanche-mixed per part, so
    ``key64(1, "a")`` and ``key64("a", 1)`` are unrelated. Strings
    contribute their CRC32 plus their length; ints contribute their
    low 64 bits.
    """
    return fold64(_GOLDEN, *parts)


def fold64(state: int, *parts: object) -> int:
    """Continue a :func:`key64` fold from a prefix *state*.

    ``fold64(key64(a, b), c, d) == key64(a, b, c, d)`` -- the fold is
    a left-to-right chain, so a constant key prefix (e.g. ``(seed,
    purpose)``) can be folded once per run and reused for millions of
    per-event keys. The crawl hot paths cache exactly such prefixes.
    """
    h = state
    for part in parts:
        # Int first: the hot callers pass precomputed int parts (e.g.
        # ``URL.h64``), strings are the slow path. The mix is inlined
        # (same ops as :func:`mix64`) to skip a call per part.
        if type(part) is int:
            v = part & _MASK
        elif type(part) is str:
            v = zlib.crc32(part.encode("utf-8")) ^ (len(part) << 32)
        elif type(part) is bool:  # pragma: no cover - defensive
            v = int(part)
        else:
            raise TypeError(
                f"key64 parts must be str or int, got {type(part).__name__}"
            )
        x = ((h ^ v) * 0xFF51AFD7ED558CCD) & _MASK
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
        h = x ^ (x >> 31)
    return h


class KeyedRand:
    """A tiny counter-based generator over one :func:`key64` key.

    Draws are ``mix64(key + i * golden)`` for ``i = 1, 2, ...`` -- the
    classic splitmix64 stream. Construction is a couple of attribute
    writes, so building one generator per crawl (or several per page
    visit) is essentially free, unlike ``random.Random(str)``.

    The API mirrors the subset of :class:`random.Random` the crawl and
    storage synthesis paths use. Draw order is part of the determinism
    contract: callers must consume in a fixed sequence, exactly as with
    ``random.Random``.
    """

    __slots__ = ("_key", "_i")

    def __init__(self, key: int):
        self._key = key & _MASK
        self._i = 0

    def split(self, salt: int) -> "KeyedRand":
        """An independent generator derived from this one's key.

        Used to give a visit's *observable* plan and its cosmetic
        *flesh* disjoint streams: the plan's draw count can then change
        (e.g. the compact path skipping flesh entirely) without shifting
        the other stream.
        """
        return KeyedRand(mix64(self._key ^ (salt * _GOLDEN)))

    def skip(self, n: int) -> None:
        """Advance the stream by *n* draws without computing them.

        Draws are pure functions of ``(key, position)``, so a caller
        that can account for the positions of the draws it skips gets
        the exact same values a sequential consumer would -- this is
        what lets the structural visit fast path read only the draws
        that can affect its result.
        """
        self._i += n

    # -- core draws ----------------------------------------------------
    def _u64(self) -> int:
        self._i += 1
        x = (self._key + self._i * _GOLDEN) & _MASK
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
        return x ^ (x >> 31)

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 random bits.

        The counter mix is inlined (same ops as :meth:`_u64`): this is
        the single most-called function of a crawl run, and the extra
        frame was measurable.
        """
        self._i = i = self._i + 1
        x = (self._key + i * _GOLDEN) & _MASK
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
        return ((x ^ (x >> 31)) >> 11) * 1.1102230246251565e-16  # 2**-53

    def randrange(self, start: int, stop: int = None) -> int:  # type: ignore[assignment]
        """Uniform int in ``range(start, stop)`` (or ``range(start)``).

        Uses the 53-bit uniform rather than rejection sampling: the
        modulo bias over crawl-sized ranges (< 2**31) is < 2**-22 and
        irrelevant for the simulation, while the cost stays one draw.
        """
        if stop is None:
            start, stop = 0, start
        width = stop - start
        if width <= 0:
            raise ValueError(f"empty range ({start}, {stop})")
        return start + int(self.random() * width)

    def randint(self, a: int, b: int) -> int:
        """Uniform int in the inclusive range [a, b]."""
        return self.randrange(a, b + 1)

    def choice(self, seq: Sequence):
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        return seq[int(self.random() * len(seq))]

    def uniform(self, a: float, b: float) -> float:
        return a + (b - a) * self.random()

    # -- shaped draws --------------------------------------------------
    def gauss(self, mu: float, sigma: float) -> float:
        """One normal deviate via Box-Muller (two uniforms per call).

        No spare-value caching: each call consumes exactly two draws,
        keeping the stream position a pure function of the call count.
        """
        u1 = self.random()
        while u1 <= 1e-12:  # pragma: no cover - p < 2**-40
            u1 = self.random()
        u2 = self.random()
        return mu + sigma * math.sqrt(-2.0 * math.log(u1)) * math.cos(
            6.283185307179586 * u2
        )

    def expovariate(self, lambd: float) -> float:
        u = self.random()
        while u <= 1e-12:  # pragma: no cover - p < 2**-40
            u = self.random()
        return -math.log(u) / lambd

    def lognormvariate(self, mu: float, sigma: float) -> float:
        return math.exp(self.gauss(mu, sigma))
