"""Crash-safe file writing.

The platform's persistence (capture stores, metrics and trace exports)
must never leave a truncated-but-valid-looking file behind: a JSONL file
cut short mid-write still parses line by line, so a crashed writer would
silently lose records. All on-disk artifacts are therefore written to a
temporary file in the destination directory and atomically renamed into
place -- readers observe either the complete old file or the complete
new one, never a prefix.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union

PathLike = Union[str, Path]


@contextmanager
def atomic_write(path: PathLike, encoding: str = "utf-8") -> Iterator[IO[str]]:
    """Open a text handle that atomically replaces *path* on success.

    The handle writes to a temporary file in the same directory (same
    filesystem, so the final ``os.replace`` is atomic). On a clean exit
    the data is flushed, fsynced and renamed over *path*; on any
    exception the temporary file is removed and *path* is untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp"
    )
    handle = os.fdopen(fd, "w", encoding=encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    handle.close()
    os.replace(tmp_name, path)
