"""Figure 6: CMP adoption in the Tranco 10k over time, with law events.

Paper: fewer than 1% of the toplist embeds one of the six CMPs in
February 2018, rising to almost 10% by September 2020; the counts
roughly double June 2018 -> June 2019 and again -> June 2020; the GDPR
and CCPA coming into effect cause visible spikes while fines and
guidance do not.

The bench times the monthly adoption series (interpolation + fade-out
over every domain timeline).
"""

import datetime as dt

from benchmarks.conftest import report
from repro.core.timeline import (
    event_impacts,
    law_effective_events_spike,
    non_law_events_at_baseline,
)


def test_figure6_adoption_over_time(benchmark, bench_study, longitudinal_series):
    dates = bench_study.monthly_dates()
    series_points = benchmark(longitudinal_series.series, dates)

    rows = []
    for date, counts in series_points:
        total = sum(counts.values())
        rows.append(f"{date}  total={total:<4} {dict(counts)}")
    report("Figure 6: monthly CMP counts in the toplist", rows)

    totals = {d: sum(c.values()) for d, c in series_points}
    jun18 = totals[dt.date(2018, 6, 1)]
    jun19 = totals[dt.date(2019, 6, 1)]
    jun20 = totals[dt.date(2020, 6, 1)]
    report(
        "Figure 6 calibration",
        [
            f"Jun 2018: {jun18}",
            f"Jun 2019: {jun19}  (x{jun19 / max(1, jun18):.2f})",
            f"Jun 2020: {jun20}  (x{jun20 / max(1, jun19):.2f})",
        ],
    )
    assert totals[dt.date(2018, 4, 1)] < jun18 < jun19 < jun20
    # Roughly doubling year over year (Section 1).
    assert 1.5 < jun19 / max(1, jun18)
    assert 1.2 < jun20 / max(1, jun19) < 3.0


def test_figure6_event_annotations(benchmark, longitudinal_series):
    impacts = benchmark(event_impacts, longitudinal_series)
    rows = [
        f"{i.event.date} [{i.event.kind:<13}] {i.event.label:<38} "
        f"growth={i.growth:<4} baseline={i.baseline_growth:.0f}"
        for i in impacts
    ]
    report("Figure 6: events vs adoption growth", rows)

    assert law_effective_events_spike(impacts)
    # Enforcement and guidance events do not show comparable spikes.
    assert non_law_events_at_baseline(impacts)
    # The separation itself: every law-effective event outgrows every
    # fine/guidance event.
    law_growth = [
        i.growth for i in impacts if i.event.kind == "law-effective"
    ]
    other_growth = [
        i.growth
        for i in impacts
        if i.event.kind in ("enforcement", "guidance")
    ]
    assert min(law_growth) > max(other_growth)
    gdpr = next(i for i in impacts if "GDPR" in i.event.label)
    assert gdpr.growth > 1.5 * gdpr.baseline_growth
