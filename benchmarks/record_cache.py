"""Record warm-start speedup to ``BENCH_cache.json``.

Runs the *default* :class:`~repro.core.pipeline.StudyConfig` pipeline
(the full 2018-03..2020-09 study window) twice against one cache
directory: cold (populating) and warm (a fresh ``Study`` served from
disk). Asserts the tentpole contract -- byte-identical exports with the
crawl phase skipped entirely -- and records the cold/warm wall-time
ratio. The acceptance floor is a >= 5x speedup; in practice the warm
run is two orders of magnitude faster because it replays JSONL instead
of crawling ~1M pages. Run from the repository root:

    PYTHONPATH=src python benchmarks/record_cache.py   (or: make bench-cache)
"""

import datetime as dt
import json
import os
import platform as platform_mod
import sys
import tempfile
import time
from pathlib import Path

from repro.core.pipeline import Study, StudyConfig
from repro.crawler.storage import save_store
from repro.obs import Observability

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cache.json"
MIN_RATIO = 5.0
WHEN = dt.date(2020, 5, 15)


def run_pipeline(cache_dir: str, out_dir: Path, label: str):
    obs = Observability()
    study = Study(StudyConfig(cache_dir=cache_dir), obs=obs)
    start = time.perf_counter()
    store = study.run_social_crawl()
    series = study.adoption_series(store)
    table = study.vantage_table(WHEN)
    curve = study.marketshare_curve(WHEN)
    seconds = time.perf_counter() - start

    store_path = out_dir / f"store-{label}.jsonl"
    save_store(store, store_path)
    exports = store_path.read_bytes() + json.dumps(
        [series.to_payload(), table.to_payload(), curve.to_payload()],
        sort_keys=True,
    ).encode("utf-8")
    return {
        "seconds": seconds,
        "exports": exports,
        "crawls": study.last_crawl_stats.crawls,
        "observations": len(store.observations),
        "hits": obs.metrics.counter("cache_hits_total").total,
        "misses": obs.metrics.counter("cache_misses_total").total,
    }


def main():
    with tempfile.TemporaryDirectory() as tmp:
        out_dir = Path(tmp)
        cache_dir = str(out_dir / "cache")
        cold = run_pipeline(cache_dir, out_dir, "cold")
        print(f"  cold: {cold['seconds']:7.2f}s  "
              f"({cold['crawls']:,} crawls, {cold['misses']:.0f} misses)")
        warm = run_pipeline(cache_dir, out_dir, "warm")
        print(f"  warm: {warm['seconds']:7.2f}s  "
              f"({warm['crawls']:,} crawls, {warm['hits']:.0f} hits)")

        assert warm["exports"] == cold["exports"], (
            "warm exports not byte-identical to cold"
        )
        assert warm["crawls"] == 0, "warm run did not skip the crawl phase"
        assert warm["hits"] > 0, "warm run reported no cache hits"
        ratio = cold["seconds"] / warm["seconds"]
        assert ratio >= MIN_RATIO, (
            f"warm speedup {ratio:.1f}x below the {MIN_RATIO:.0f}x floor"
        )

    record = {
        "recorded_at": dt.datetime.now(dt.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform_mod.python_version(),
        "cpu_count": os.cpu_count(),
        "study_config": "default",
        "cold_seconds": round(cold["seconds"], 3),
        "warm_seconds": round(warm["seconds"], 3),
        "speedup": round(ratio, 1),
        "min_ratio": MIN_RATIO,
        "cold_crawls": cold["crawls"],
        "warm_crawls": warm["crawls"],
        "observations": cold["observations"],
        "warm_cache_hits": warm["hits"],
        "byte_identical_verified": True,
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"  speedup: {ratio:.1f}x (floor {MIN_RATIO:.0f}x)")
    print(f"baseline written to {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
