"""Record analyzer runtime over the full tree to ``BENCH_lint.json``.

``repro.lint`` runs in front of every ``make verify``, so rule additions
that quietly blow up its runtime tax every CI run and every local
verify. This recorder analyzes the whole repository tree (``src``,
``scripts``, ``benchmarks``, ``tests``) N times and records best-of-N
wall time -- total and per phase (phase 1: per-file rules + index,
phase 2: whole-program analyses) -- together with the corpus size, so a
later "the linter got slow" bisection has a baseline to compare
against. Run from the repository root:

    PYTHONPATH=src python benchmarks/record_lint.py            # record
    PYTHONPATH=src python benchmarks/record_lint.py --check    # guard

Both modes enforce the phase-2 floor guard: the whole-program pass must
stay under ``PHASE2_MAX_RATIO`` x the phase-1 wall time -- the merged
index is supposed to make the global analyses cheap, and a phase 2 that
rivals the parse/walk cost means an accidental quadratic resolution
path. ``--check`` measures and asserts without rewriting the baseline.

Only the committed-clean targets (``src``, ``scripts``) are asserted
clean; ``benchmarks`` and ``tests`` are linted purely as corpus to make
the timing representative of a larger tree.
"""

import datetime as dt
import json
import os
import platform as platform_mod
import sys
import time
from pathlib import Path

from repro.lint import DEFAULT_CONFIG, lint_paths
from repro.lint.engine import iter_python_files

REPEATS = 5
REPO_ROOT = Path(__file__).resolve().parent.parent
CLEAN_TARGETS = ("src", "scripts")
CORPUS_TARGETS = ("src", "scripts", "benchmarks", "tests")
OUT_PATH = REPO_ROOT / "BENCH_lint.json"

#: Phase 2 must stay under this multiple of phase-1 wall time.
PHASE2_MAX_RATIO = 2.0


def corpus_size(paths):
    files = iter_python_files(paths)
    lines = sum(
        len(p.read_text(encoding="utf-8").splitlines()) for p in files
    )
    return len(files), lines


def measure(corpus_paths):
    """Best-of-N total/per-phase timings and the stable finding count."""
    totals, phase1s, phase2s = [], [], []
    findings = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = lint_paths(corpus_paths, DEFAULT_CONFIG, root=REPO_ROOT)
        totals.append(time.perf_counter() - start)
        phase1s.append(result.timings["phase1"])
        phase2s.append(result.timings["phase2"])
        if findings is None:
            findings = len(result.findings)
        else:
            assert findings == len(result.findings), "nondeterministic lint"
    return min(totals), min(phase1s), min(phase2s), findings


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    check_only = "--check" in argv

    clean_paths = [REPO_ROOT / t for t in CLEAN_TARGETS]
    corpus_paths = [REPO_ROOT / t for t in CORPUS_TARGETS]

    clean_run = lint_paths(clean_paths, DEFAULT_CONFIG, root=REPO_ROOT)
    assert clean_run.clean, (
        "src/scripts must be lint-clean before recording a baseline:\n"
        + "\n".join(f.format() for f in clean_run.findings)
    )

    n_files, n_lines = corpus_size(corpus_paths)
    best, phase1, phase2, findings = measure(corpus_paths)

    ratio = phase2 / phase1 if phase1 > 0 else 0.0
    print(
        f"  analyzed {n_files} files / {n_lines} lines "
        f"in {best:.3f}s best-of-{REPEATS} "
        f"(phase1 {phase1:.3f}s, phase2 {phase2:.3f}s, "
        f"ratio {ratio:.2f})"
    )
    assert ratio < PHASE2_MAX_RATIO, (
        f"phase 2 took {ratio:.2f}x phase-1 wall time "
        f"(floor: {PHASE2_MAX_RATIO}x); the whole-program pass has "
        f"regressed disproportionately"
    )

    if check_only:
        print("phase-2 floor guard ok")
        return 0

    record = {
        "recorded_at": dt.datetime.now(dt.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform_mod.python_version(),
        "cpu_count": os.cpu_count(),
        "targets": list(CORPUS_TARGETS),
        "files": n_files,
        "lines": n_lines,
        "repeats": REPEATS,
        "best_seconds": round(best, 4),
        "phase1_seconds": round(phase1, 4),
        "phase2_seconds": round(phase2, 4),
        "phase2_over_phase1": round(ratio, 4),
        "phase2_max_ratio": PHASE2_MAX_RATIO,
        "lines_per_second": round(n_lines / best),
        "corpus_findings": findings,
        "src_scripts_clean": True,
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"baseline written to {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
