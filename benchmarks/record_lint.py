"""Record linter runtime over the full tree to ``BENCH_lint.json``.

``repro.lint`` runs in front of every ``make verify``, so rule additions
that quietly blow up its runtime tax every CI run and every local
verify. This recorder lints the whole repository tree (``src``,
``scripts``, ``benchmarks``, ``tests``) N times and records the
best-of-N wall time together with the corpus size, so a later "the
linter got slow" bisection has a baseline to compare against. Run from
the repository root:

    PYTHONPATH=src python benchmarks/record_lint.py

Only the committed-clean targets (``src``, ``scripts``) are asserted
clean; ``benchmarks`` and ``tests`` are linted purely as corpus to make
the timing representative of a larger tree.
"""

import datetime as dt
import json
import os
import platform as platform_mod
import sys
import time
from pathlib import Path

from repro.lint import DEFAULT_CONFIG, lint_paths
from repro.lint.engine import iter_python_files

REPEATS = 5
REPO_ROOT = Path(__file__).resolve().parent.parent
CLEAN_TARGETS = ("src", "scripts")
CORPUS_TARGETS = ("src", "scripts", "benchmarks", "tests")
OUT_PATH = REPO_ROOT / "BENCH_lint.json"


def corpus_size(paths):
    files = iter_python_files(paths)
    lines = sum(
        len(p.read_text(encoding="utf-8").splitlines()) for p in files
    )
    return len(files), lines


def main():
    clean_paths = [REPO_ROOT / t for t in CLEAN_TARGETS]
    corpus_paths = [REPO_ROOT / t for t in CORPUS_TARGETS]

    clean_run = lint_paths(clean_paths, DEFAULT_CONFIG, root=REPO_ROOT)
    assert clean_run.clean, (
        "src/scripts must be lint-clean before recording a baseline:\n"
        + "\n".join(f.format() for f in clean_run.findings)
    )

    n_files, n_lines = corpus_size(corpus_paths)
    timings = []
    findings = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = lint_paths(corpus_paths, DEFAULT_CONFIG, root=REPO_ROOT)
        timings.append(time.perf_counter() - start)
        if findings is None:
            findings = len(result.findings)
        else:
            assert findings == len(result.findings), "nondeterministic lint"

    best = min(timings)
    record = {
        "recorded_at": dt.datetime.now(dt.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform_mod.python_version(),
        "cpu_count": os.cpu_count(),
        "targets": list(CORPUS_TARGETS),
        "files": n_files,
        "lines": n_lines,
        "repeats": REPEATS,
        "best_seconds": round(best, 4),
        "lines_per_second": round(n_lines / best),
        "corpus_findings": findings,
        "src_scripts_clean": True,
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"  linted {n_files} files / {n_lines} lines "
        f"in {best:.3f}s best-of-{REPEATS} "
        f"({record['lines_per_second']} lines/s)"
    )
    print(f"baseline written to {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
