"""Record retry-path overhead to ``BENCH_faults.json``.

The chaos invariant says a fault-free run with ``repro.faults`` wired in
is *bit-identical* to one without it; this benchmark pins down what the
wiring *costs*. It times the same two-week social window three ways --
no schedule (``faults=None``, today's fast path), an empty schedule
(every crawl goes through ``run_with_retries`` and a ``fault_for``
lookup that injects nothing), and a transient schedule whose faults are
all recovered -- and records the relative overhead. Also asserts the
bit-identical contract across all three modes. Run from the repository
root:

    PYTHONPATH=src python benchmarks/record_faults.py

The acceptance budget is a small single-digit-percent overhead for the
empty-schedule mode; single runs on a noisy machine jitter either way,
so the best-of-N of interleaved repetitions is recorded.
"""

import datetime as dt
import json
import os
import platform as platform_mod
import sys
import time
from pathlib import Path

from repro.crawler.platform import NetographPlatform, PlatformConfig
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.faults import FaultSchedule, FaultSpec, RetryPolicy
from repro.web.worldgen import World, WorldConfig

WINDOW = (dt.date(2020, 4, 1), dt.date(2020, 4, 15))
REPEATS = 9
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

RETRY = RetryPolicy(max_retries=5, base_delay=0.01, max_delay=0.1, jitter=0.0)

MODES = {
    "no_schedule": {"faults": None, "retry": None},
    "empty_schedule": {"faults": FaultSchedule(seed=99), "retry": RETRY},
    "transient_recovered": {
        "faults": FaultSchedule(
            seed=13,
            specs=(
                FaultSpec("dns-error", rate=0.1, attempts=1),
                FaultSpec("connection-reset", rate=0.1, attempts=2),
            ),
        ),
        "retry": RETRY,
    },
}


def run_window(world, faults, retry):
    platform = NetographPlatform(
        world,
        stream=SocialShareStream(world, StreamConfig(events_per_day=600)),
        config=PlatformConfig(faults=faults, retry=retry),
    )
    start = time.perf_counter()
    store = platform.run(*WINDOW)
    seconds = time.perf_counter() - start
    keys = [
        (o.domain, o.date.isoformat(), o.cmp_key, o.vantage.region)
        for o in store.observations
    ]
    return seconds, keys, platform.stats.faults


def main():
    world = World(WorldConfig(seed=7, n_domains=20_000))
    # Warm the lazy site cache so no mode pays world generation.
    run_window(world, None, None)

    timings = {name: [] for name in MODES}
    tallies = {}
    baseline_keys = None
    order = list(MODES)
    for rep in range(REPEATS):
        # Rotate the mode order so per-rep machine drift (CPU contention,
        # cache state) does not bias one mode systematically.
        for name in order[rep % len(order):] + order[:rep % len(order)]:
            mode = MODES[name]
            seconds, keys, tally = run_window(
                world, mode["faults"], mode["retry"]
            )
            timings[name].append(seconds)
            tallies[name] = tally
            if baseline_keys is None:
                baseline_keys = keys
            else:
                assert keys == baseline_keys, (
                    f"bit-identical contract violated in mode {name!r}"
                )

    # Best-of-N: on a contended machine the minimum approximates the
    # true cost; best drift with background load.
    best = {name: min(values) for name, values in timings.items()}
    base = best["no_schedule"]
    recovered = tallies["transient_recovered"]
    assert recovered.injected > 0 and recovered.exhausted == 0
    record = {
        "recorded_at": dt.datetime.now(dt.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform_mod.python_version(),
        "cpu_count": os.cpu_count(),
        "window_days": (WINDOW[1] - WINDOW[0]).days,
        "repeats": REPEATS,
        "best_seconds": {k: round(v, 4) for k, v in best.items()},
        "overhead_pct_vs_no_schedule": {
            name: round((best[name] / base - 1.0) * 100, 2)
            for name in ("empty_schedule", "transient_recovered")
        },
        "transient_faults_injected": recovered.injected,
        "transient_retries": recovered.retries,
        "bit_identical_verified": True,
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    for name, value in best.items():
        print(f"  {name:<20} best {value:7.3f}s")
    print(
        "  empty-schedule overhead: "
        f"{record['overhead_pct_vs_no_schedule']['empty_schedule']:+.2f}%"
    )
    print(f"baseline written to {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
