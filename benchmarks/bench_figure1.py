"""Figure 1: sample size and observation window vs prior work.

Paper: previous studies conducted point-in-time snapshots of small
samples (1k-28k domains) in a rapidly changing environment; this paper
covers 4.2M domains over 2.5 years. (For example, the consent prompt of
a single CMP changed 38 times in the observation period.)
"""

from benchmarks.conftest import report
from repro.core.relatedwork import (
    comparison_rows,
    figure1_series,
    this_paper_dominates,
)


def test_figure1_related_work_comparison(benchmark):
    rows_data = benchmark(comparison_rows)

    rows = [
        f"{r.study.name:<26} {r.study.venue:<10} "
        f"{r.study.n_domains:>9,} domains  {r.study.window_days:>4} days"
        f"{'  [snapshot]' if r.is_snapshot else ''}"
        for r in rows_data
    ]
    report("Figure 1: prior work vs this paper", rows)

    assert this_paper_dominates()
    series = figure1_series()
    this = series[-1]
    assert this[1] == 4_200_000
    assert this[2] > 900
    # Every prior study is at least two orders of magnitude smaller.
    for name, n_domains, _ in series[:-1]:
        assert n_domains < this[1] / 100


def test_figure1_environment_changes_under_snapshots(benchmark):
    """Figure 1's caption: "the consent prompt of a single CMP
    (Quantcast) changed 38 times in our observation period" -- i.e. the
    environment the snapshot studies measured kept changing under them.
    """
    import datetime as dt

    from repro.cmps.dialog_history import (
        changes_between,
        dialog_template_history,
        snapshot_staleness,
    )
    from repro.datasets import RELATED_WORK, STUDY_END, STUDY_START

    history = benchmark(dialog_template_history, "quantcast")
    total = changes_between(history, STUDY_START, STUDY_END)
    rows = [f"Quantcast dialog changes in the window: {total} (paper: 38)"]
    for study_row in RELATED_WORK[:-1]:
        stale = snapshot_staleness(history, study_row.window_end)
        rows.append(
            f"{study_row.name:<26} measured a dialog that changed "
            f"{stale}x within 6 months of its window"
        )
    report("Figure 1: a rapidly changing environment", rows)

    assert total == 38
    for study_row in RELATED_WORK[:-1]:
        if study_row.window_end < dt.date(2020, 4, 1):
            assert snapshot_staleness(history, study_row.window_end) >= 2
