"""Shared state for the benchmark harnesses.

Every bench regenerates one of the paper's tables or figures. The
expensive artefacts (a 20k-domain world, a full 2.5-year longitudinal
crawl, the 215-version GVL history) are built once per session; each
bench then times the *analysis* that produces its figure and prints the
rows the paper reports (run with ``-s`` to see them).
"""

import datetime as dt

import pytest

from repro.core.pipeline import Study, StudyConfig
from repro.tcf.gvlgen import generate_gvl_history

MAY_2020 = dt.date(2020, 5, 15)
JAN_2020 = dt.date(2020, 1, 15)
JAN_2019 = dt.date(2019, 1, 15)


def report(title, rows):
    """Print a result block (the 'same rows the paper reports')."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("   ", row)


@pytest.fixture(scope="session")
def bench_study():
    """The benchmark world: 20k domains, Tranco 10k toplist."""
    return Study(
        StudyConfig(
            seed=7, n_domains=20_000, toplist_size=10_000, events_per_day=600
        )
    )


@pytest.fixture(scope="session")
def longitudinal_store(bench_study):
    """A full-window (2018-03 .. 2020-09) social-media crawl."""
    return bench_study.run_social_crawl()


@pytest.fixture(scope="session")
def longitudinal_series(bench_study, longitudinal_store):
    return bench_study.adoption_series(
        longitudinal_store, restrict_to_toplist=True
    )


@pytest.fixture(scope="session")
def full_gvl_history():
    return generate_gvl_history()


@pytest.fixture(scope="session")
def toplist_crawl_may(bench_study):
    """The six-configuration Tranco-10k crawl at the Table 1 date."""
    return bench_study.run_toplist_crawl(MAY_2020)


@pytest.fixture(scope="session")
def toplist_crawl_jan(bench_study):
    """The same crawl at the Table A.3 date (January 2020)."""
    return bench_study.run_toplist_crawl(JAN_2020)
