"""Figures 5, A.4, A.5, A.6: cumulative CMP marketshare by toplist size.

Paper: ~4% in the top 100, ~13% in the top 1k, falling to 1.51% in the
top 1M (May 2020); none of the very largest sites embed the six CMPs;
Quantcast leads the top 100, OneTrust the mid-market, Quantcast the long
tail. Figures A.4/A.5 repeat the curve for January 2019 / January 2020,
showing OneTrust overhauling Quantcast's early dominance.

The bench builds a full million-domain world and Tranco list, then times
the stratified marketshare computation.
"""

import datetime as dt

import pytest

from benchmarks.conftest import JAN_2019, JAN_2020, MAY_2020, report
from repro.core.marketshare import marketshare_by_toplist_size, peak_band
from repro.core.pipeline import Study, StudyConfig
from repro.toplist.tranco import build_tranco


@pytest.fixture(scope="module")
def mega_study():
    """A million-domain world for the full Figure 5 x-axis."""
    return Study(StudyConfig(seed=7, n_domains=1_000_000))


@pytest.fixture(scope="module")
def mega_tranco(mega_study):
    return build_tranco(mega_study.world)


def _curve(study, tranco, date):
    return marketshare_by_toplist_size(
        study.world, tranco, date,
        exact_limit=10_000, samples_per_stratum=2_000,
    )


def test_figure5_may_2020(benchmark, mega_study, mega_tranco):
    curve = benchmark.pedantic(
        _curve, args=(mega_study, mega_tranco, MAY_2020),
        rounds=1, iterations=1,
    )
    rows = [
        f"top {size:>9,}: total {total * 100:5.2f}%  "
        + "  ".join(f"{k}={v * 100:.2f}%" for k, v in per_cmp.items() if v)
        for size, total, per_cmp in curve.rows()
    ]
    report("Figure 5 (May 2020): cumulative marketshare by toplist size", rows)

    top100 = curve.total_share(100)
    top1k = curve.total_share(1_000)
    top1m = curve.total_share(1_000_000)
    report(
        "Figure 5 calibration points",
        [
            f"top 100:  {top100 * 100:.2f}%   (paper:  4%)",
            f"top 1k:   {top1k * 100:.2f}%   (paper: 13%)",
            f"top 1M:   {top1m * 100:.2f}%   (paper: 1.51%)",
            f"peak adoption density band: {peak_band(curve)}",
        ],
    )
    assert 0.02 < top100 < 0.08
    assert 0.10 < top1k < 0.17
    assert 0.008 < top1m < 0.025
    # Quantcast leads the top 100; OneTrust the Tranco 10k.
    counts100 = {k: curve.counts[k][curve.sizes.index(100)] for k in curve.counts}
    assert counts100["quantcast"] == max(counts100.values())
    counts10k = {
        k: curve.counts[k][curve.sizes.index(10_000)] for k in curve.counts
    }
    assert counts10k["onetrust"] == max(counts10k.values())
    # Quantcast leads the long tail.
    tail = {
        k: curve.counts[k][-1] - curve.counts[k][curve.sizes.index(10_000)]
        for k in curve.counts
    }
    assert tail["quantcast"] == max(tail.values())


def test_figures_a4_a5_longitudinal_marketshare(
    benchmark, mega_study, mega_tranco
):
    def both():
        return (
            _curve(mega_study, mega_tranco, JAN_2019),
            _curve(mega_study, mega_tranco, JAN_2020),
        )

    jan19, jan20 = benchmark.pedantic(both, rounds=1, iterations=1)

    def leader(curve, size):
        idx = curve.sizes.index(size)
        return max(curve.counts, key=lambda k: curve.counts[k][idx])

    report(
        "Figures A.4/A.5: marketshare over time",
        [
            f"Jan 2019 top-10k total: {jan19.total_share(10_000) * 100:.2f}%  "
            f"leader: {leader(jan19, 10_000)}",
            f"Jan 2020 top-10k total: {jan20.total_share(10_000) * 100:.2f}%  "
            f"leader: {leader(jan20, 10_000)}",
        ],
    )
    # Adoption grows throughout.
    assert jan20.total_share(10_000) > jan19.total_share(10_000)
