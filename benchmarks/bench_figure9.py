"""Figure 9: the TrustArc opt-out waterfall on forbes.com.

Paper: opting out takes at least 34 seconds and seven clicks (not
including user interaction); accepting closes the dialog immediately.
Opting out causes an additional 279 HTTP(S) requests to 25 domains and
an additional 1.2 MB / 5.8 MB (compressed / uncompressed) of transfer.
Measured hourly for two weeks from a European university.

The bench times the full two-week replay study (336 opt-out runs plus
336 accept runs).
"""

from benchmarks.conftest import report
from repro.core.timing import OptOutStudy


def test_figure9_optout_waterfall(benchmark):
    study = benchmark.pedantic(
        OptOutStudy.run, kwargs={"n_runs": 14 * 24, "seed": 9},
        rounds=1, iterations=1,
    )

    paper = {
        "median opt-out duration (s)": 34.0,
        "median clicks to opt out": 7.0,
        "median extra requests": 279.0,
        "median partner domains": 25.0,
        "median extra MB (compressed)": 1.2,
        "median extra MB (uncompressed)": 5.8,
    }
    rows = []
    for label, value in study.rows():
        target = paper.get(label)
        suffix = f"   (paper: {target})" if target is not None else ""
        rows.append(f"{label:<34} {value:8.2f}{suffix}")
    report("Figure 9: opt-out vs accept", rows)

    report(
        "Figure 9: step breakdown (median seconds)",
        [f"{label:<30} {d:6.2f}" for label, d in study.step_breakdown()],
    )

    assert study.median_duration >= 30.0
    assert study.median_clicks >= 7
    assert 230 <= study.median_extra_requests <= 330
    assert study.median_partner_domains == 25
    assert 0.9 < study.median_extra_mb_compressed < 1.6
    assert 4.5 < study.median_extra_mb_uncompressed < 7.5
    assert study.median_accept_duration < 1.0
    benchmark.extra_info["medians"] = dict(study.rows())


def test_figure9_distribution_across_cmps(benchmark):
    """I6 in ecosystem context: how long each CMP takes to distribute a
    decision. TrustArc's sequential opt-out waterfall is the outlier;
    everywhere else distribution is a sub-second parallel pixel burst.
    """
    from repro.cmps.distribution import distribution_comparison

    table = benchmark.pedantic(
        distribution_comparison, kwargs={"seed": 31, "runs_per_cell": 15},
        rounds=1, iterations=1,
    )
    rows = []
    for cmp_key in ("quantcast", "onetrust", "trustarc", "cookiebot",
                    "liveramp", "crownpeak"):
        rows.append(
            f"{cmp_key:<10} accept={table[(cmp_key, 'accept')]:6.2f}s   "
            f"reject={table[(cmp_key, 'reject')]:6.2f}s"
        )
    report("I6: consent-distribution time by CMP and decision", rows)

    assert table[("trustarc", "reject")] > 25.0
    for cmp_key in ("quantcast", "onetrust", "cookiebot"):
        assert table[(cmp_key, "accept")] < 1.0
        assert table[(cmp_key, "reject")] < 1.0
