"""Record the consent-graph baseline to ``BENCH_graph.json``.

Standalone perf recorder for :mod:`repro.graph`: times the full study
graph build (nodes+edges per second) and the latency of every shadow
query over it, writing a compact JSON record so the graph subsystem's
perf trajectory is tracked in-repo from PR to PR. Run from the
repository root:

    PYTHONPATH=src python benchmarks/record_graph.py

``--check`` (wired as ``make bench-graph``, the CI perf gate) re-times
the build best-of-N and fails when the fresh nodes+edges/sec rate drops
below ``FLOOR_FRACTION`` (0.8x) of the committed baseline; it never
writes the JSON.
"""

import argparse
import datetime as dt
import json
import platform as platform_mod
import sys
import time
from pathlib import Path

from repro.core.pipeline import Study, StudyConfig
from repro.graph import (
    adoption_series,
    build_study_graph,
    country_fig5,
    fig5_curve,
    graph_countries,
    gvl_churn,
    observed_curve,
    vantage_table,
)
from repro.core.marketshare import default_sizes
from repro.tcf.gvlgen import GvlGenConfig, generate_gvl_history
from repro.toplist.providers import per_country_toplists

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_graph.json"

#: ``--check`` fails when the fresh build rate drops below this
#: fraction of the committed baseline (a >20% regression).
FLOOR_FRACTION = 0.8
#: Timing repetitions (best-of -- shields the floor from scheduler
#: noise on shared runners).
BUILD_REPS = 3
QUERY_REPS = 5

#: The benchmark study: a three-month crawl over a 5k world, plus a
#: shortened GVL history (same dynamics as the full one, faster).
CONFIG = StudyConfig(
    seed=7,
    n_domains=5_000,
    toplist_size=500,
    events_per_day=150,
    study_start=dt.date(2020, 3, 1),
    study_end=dt.date(2020, 6, 1),
)
QUERY_DATE = dt.date(2020, 5, 15)
GVL_CONFIG = GvlGenConfig(
    seed=20, initial_vendors=60, last_date=dt.date(2019, 6, 1)
)


def build_sources():
    study = Study(CONFIG)
    store = study.run_social_crawl()
    toplists = per_country_toplists(
        study.world, study.tranco, max_rank=CONFIG.toplist_size
    )
    versions = generate_gvl_history(GVL_CONFIG)
    return study, store, toplists, versions


def build_once(study, store, toplists, versions):
    return build_study_graph(
        store=store,
        world=study.world,
        tranco=study.tranco,
        ranking_depth=CONFIG.toplist_size,
        country_toplists=toplists,
        gvl_versions=versions,
    )


def time_build(study, store, toplists, versions, reps=BUILD_REPS):
    best = None
    graph = None
    for _ in range(reps):
        start = time.perf_counter()
        graph = build_once(study, store, toplists, versions)
        seconds = time.perf_counter() - start
        if best is None or seconds < best:
            best = seconds
    elements = graph.n_nodes + graph.n_edges
    return graph, {
        "seconds": round(best, 4),
        "nodes": graph.n_nodes,
        "edges": graph.n_edges,
        "elements_per_second": round(elements / best, 1),
        "timing_reps": reps,
        "digest": graph.digest()[:16],
    }


def time_query(fn, reps=QUERY_REPS):
    best = None
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        seconds = time.perf_counter() - start
        if best is None or seconds < best:
            best = seconds
    return round(best * 1000, 3)


def time_queries(graph, study):
    sizes = default_sizes(CONFIG.toplist_size)
    first_country = graph_countries(graph)[0]
    latencies = {
        "adoption_series": time_query(lambda: adoption_series(graph)),
        "vantage_table": time_query(lambda: vantage_table(graph)),
        "fig5_curve": time_query(lambda: fig5_curve(graph, QUERY_DATE, sizes)),
        "observed_curve": time_query(
            lambda: observed_curve(graph, QUERY_DATE, sizes)
        ),
        "gvl_churn": time_query(lambda: gvl_churn(graph)),
        "country_fig5": time_query(
            lambda: country_fig5(graph, first_country, QUERY_DATE)
        ),
    }
    return {"latency_ms": latencies}


def check_floor(out_path=OUT_PATH, floor=FLOOR_FRACTION):
    """Fail (exit 1) if the build rate regressed >20% vs *out_path*."""
    if not out_path.exists():
        print(f"no committed baseline at {out_path}; nothing to check")
        return 0
    committed = json.loads(out_path.read_text())
    committed_rate = committed["build"]["elements_per_second"]

    sources = build_sources()
    _, fresh = time_build(*sources)
    ratio = fresh["elements_per_second"] / committed_rate
    verdict = "OK" if ratio >= floor else "FAIL"
    print(
        f"graph build floor: fresh {fresh['elements_per_second']:.1f} "
        f"elements/s vs committed {committed_rate:.1f} ({ratio:.2f}x, "
        f"floor {floor:.2f}x) -- {verdict}"
    )
    if ratio < floor:
        print(
            "graph build throughput regressed more than "
            f"{(1 - floor) * 100:.0f}% against BENCH_graph.json; fix the "
            "regression or re-record the baseline with "
            "`PYTHONPATH=src python benchmarks/record_graph.py`."
        )
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare the fresh build rate against the committed "
        "baseline and fail on a >20%% regression (writes nothing)",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_floor()

    study, store, toplists, versions = build_sources()
    graph, build = time_build(study, store, toplists, versions)
    record = {
        "python": platform_mod.python_version(),
        "machine": platform_mod.machine(),
        "config": {
            "seed": CONFIG.seed,
            "n_domains": CONFIG.n_domains,
            "toplist_size": CONFIG.toplist_size,
            "events_per_day": CONFIG.events_per_day,
            "window": [
                CONFIG.study_start.isoformat(),
                CONFIG.study_end.isoformat(),
            ],
            "gvl_versions": len(versions),
        },
        "build": build,
        "queries": time_queries(graph, study),
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nbaseline written to {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
