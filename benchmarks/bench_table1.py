"""Tables 1 and A.3: CMP occurrence in the Tranco 10k by vantage point.

Paper (Table 1, May 2020):  OneTrust 341/368/403..414, Quantcast
173/207/225..233, ... coverage 79% (US cloud) -> 100% (EU university).
Paper (Table A.3, Jan 2020): US-cloud coverage only 70%; Crownpeak at 34.

The bench times building the vantage table from the six-configuration
crawl, then prints both tables.
"""

from benchmarks.conftest import report
from repro.cmps.base import CMP_KEYS
from repro.core.vantage import VantageTable


def test_table1_vantage_comparison(benchmark, toplist_crawl_may):
    table = benchmark(VantageTable.from_crawl, toplist_crawl_may)

    report(
        "Table 1 (May 2020): CMP occurrence by vantage",
        table.format_table().splitlines(),
    )
    # Shape assertions from the paper.
    assert table.total("us-cloud") < table.total("eu-cloud")
    assert table.total("eu-cloud") < table.total("eu-univ-extended")
    assert table.coverage("us-cloud") < 0.92
    for key in ("onetrust", "quantcast", "trustarc"):
        assert table.count("eu-univ-extended", key) >= table.count(
            "us-cloud", key
        )
    benchmark.extra_info["totals"] = {
        name: table.total(name) for name in table.counts
    }


def test_table_a3_january_2020(benchmark, toplist_crawl_jan):
    table = benchmark(VantageTable.from_crawl, toplist_crawl_jan)

    report(
        "Table A.3 (January 2020): CMP occurrence by vantage",
        table.format_table().splitlines(),
    )
    # January shows lower US coverage than May (CCPA adoption closes
    # the gap over 2020).
    assert table.coverage("us-cloud") < 0.93
    benchmark.extra_info["totals"] = {
        name: table.total(name) for name in table.counts
    }


def test_table1_us_coverage_rises_jan_to_may(
    benchmark, toplist_crawl_may, toplist_crawl_jan
):
    def both():
        return (
            VantageTable.from_crawl(toplist_crawl_may),
            VantageTable.from_crawl(toplist_crawl_jan),
        )

    may, jan = benchmark(both)
    report(
        "US-cloud coverage, Jan vs May 2020",
        [
            f"jan: {jan.coverage('us-cloud') * 100:.0f}%  (paper: 70%)",
            f"may: {may.coverage('us-cloud') * 100:.0f}%  (paper: 79%)",
        ],
    )
    assert may.coverage("us-cloud") >= jan.coverage("us-cloud") - 0.02
