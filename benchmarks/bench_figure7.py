"""Figure 7: vendors and declared purposes on the Global Vendor List.

Paper: both the number of vendors and the per-purpose declaration
counts grow over time with a sharp spike as the GDPR comes into effect;
purpose 1 ("Information storage and access") is always the most popular.

The bench times the full longitudinal GVL analysis over the 215-version
history.
"""

import datetime as dt

from benchmarks.conftest import report
from repro.core.gvl_analysis import GvlAnalysis
from repro.tcf.purposes import PURPOSES


def test_figure7_gvl_growth(benchmark, full_gvl_history):
    analysis = benchmark(GvlAnalysis, full_gvl_history)

    series = analysis.vendor_count_series()
    sampled = series[:: max(1, len(series) // 14)]
    rows = [f"{date}  {count:>4} vendors" for date, count in sampled]
    report("Figure 7: GVL vendor count over time", rows)

    purpose_rows = []
    latest_hist = full_gvl_history[-1].purpose_histogram("any")
    for purpose in PURPOSES:
        purpose_rows.append(
            f"P{purpose.id} {purpose.name:<42} {latest_hist[purpose.id]:>4}"
        )
    report("Figure 7: purposes declared (latest version)", purpose_rows)

    counts = dict(series)
    pre_gdpr = counts[min(counts)]
    post_spike = analysis._closest(dt.date(2018, 8, 1))
    final = len(full_gvl_history[-1])
    assert len(post_spike) > 2.5 * pre_gdpr  # the GDPR spike
    assert final >= len(post_spike)  # keeps growing afterwards
    assert analysis.most_declared_purpose() == 1
    benchmark.extra_info["final_vendors"] = final
