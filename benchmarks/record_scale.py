"""Record (or check) the flat-RSS scale benchmark.

Runs the social-share crawl at two scales -- a small study and a
``LARGE_DAYS / SMALL_DAYS`` (~12x) larger one -- with the spilling
capture store active (``StudyConfig.memory_budget``), and records
``(crawls, peak_rss_mb, wall_seconds)`` for each run into
``BENCH_scale.json``. The point of the record is the *ratio*: crawls
grow ~12x while peak RSS stays roughly flat, because the store spills
full segments to disk and the world caches are bounded LRUs.

Peak RSS is read through :class:`repro.obs.memory.RusageReader`, i.e.
the kernel's process-lifetime high-water mark. Because ``ru_maxrss``
is monotone within a process, each study runs in its own subprocess
(``--run-one``); the parent only orchestrates and aggregates.

``--check`` mode (wired into ``make bench-scale`` and the perf CI job)
re-runs the large study and fails when

* its peak RSS exceeds the budget-derived cap (``BASE_RSS_MB`` plus
  ``ROW_BUDGET`` rows at ``ROW_COST_BYTES`` each, with slack), or
* its peak RSS regresses more than ``RSS_SLACK_FRACTION`` over the
  committed ``BENCH_scale.json``, or
* a tiny spill-vs-in-memory digest comparison stops being
  bit-identical (the correctness half of the guard).

``--check`` never writes the JSON; refresh the baseline on purpose
with ``make bench-scale-baseline``.
"""

from __future__ import annotations

import argparse
import datetime as dt
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_scale.json"

#: One fixed workload, two sizes. The large study clears the 3M-crawl
#: mark (365 days x 25k events/day x ~40% queue acceptance).
SEED = 7
N_DOMAINS = 20_000
EVENTS_PER_DAY = 25_000
STUDY_START = "2020-03-01"
SMALL_DAYS = 30
LARGE_DAYS = 365

#: Spill budget: the active in-memory segment never exceeds this many
#: rows; full segments go to ``shard-NNNN.jsonl`` on disk.
ROW_BUDGET = 100_000

#: RSS cap for the CI guard, derived from the budget: a fixed base for
#: the interpreter + numpy + the bounded world caches, plus a generous
#: per-resident-row cost for the active segment. Crawl volume does not
#: appear in the formula -- that is the invariant under test.
BASE_RSS_MB = 170.0
ROW_COST_BYTES = 600
RSS_CAP_MB = BASE_RSS_MB + ROW_BUDGET * ROW_COST_BYTES / (1024 * 1024)

#: A fresh run may exceed the committed large-study RSS by at most
#: this fraction before --check fails.
RSS_SLACK_FRACTION = 0.2

#: Digest guard scale: big enough to force several spills at a small
#: budget, small enough to run twice in seconds.
GUARD_DAYS = 3
GUARD_EVENTS_PER_DAY = 4_000
GUARD_BUDGET = 1_500


def _study_config(days: int, budget: Optional[int]):
    from repro.core.pipeline import StudyConfig

    start = dt.date.fromisoformat(STUDY_START)
    return StudyConfig(
        seed=SEED,
        n_domains=N_DOMAINS,
        toplist_size=1_000,
        events_per_day=EVENTS_PER_DAY,
        study_start=start,
        study_end=start + dt.timedelta(days=days),
        memory_budget=budget,
    )


def run_one(spec: Dict) -> Dict:
    """Run ONE study in this process and report its numbers.

    Invoked via ``--run-one`` in a subprocess so the reported
    ``peak_rss_mb`` is this study's own high-water mark, not the max
    over every study the parent has run so far.
    """
    from repro.core.pipeline import Study
    from repro.crawler.spill import SpillingCaptureStore
    from repro.obs.memory import RusageReader

    config = _study_config(spec["days"], spec.get("budget"))
    study = Study(config)
    t0 = time.perf_counter()
    store = study.run_social_crawl()
    crawls = store.n_rows
    # Downstream consumption must stay bounded too: stream the rows
    # (one spilled segment resident at a time) instead of folding.
    with_cmp = 0
    for _domain, _ordinal, cmp_key, _vantage in store.iter_rows():
        if cmp_key is not None:
            with_cmp += 1
    wall = time.perf_counter() - t0
    peak_mb = RusageReader().peak_rss_bytes() / (1024 * 1024)
    result = {
        "crawls": crawls,
        "rows_with_cmp": with_cmp,
        "segments": getattr(store, "n_segments", 0),
        "peak_rss_mb": round(peak_mb, 1),
        "wall_seconds": round(wall, 2),
    }
    if isinstance(store, SpillingCaptureStore):
        store.cleanup()
    return result


def run_in_subprocess(spec: Dict) -> Dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--run-one",
         json.dumps(spec)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"--run-one failed for spec {spec}")
    return json.loads(proc.stdout)


def check_digest_guard() -> List[str]:
    """Spilled and never-spilled runs of one study must agree bit-for-bit."""
    from repro.core.pipeline import Study, StudyConfig
    from repro.crawler.storage import store_digest

    start = dt.date.fromisoformat(STUDY_START)
    base = dict(
        seed=SEED,
        n_domains=2_000,
        toplist_size=200,
        events_per_day=GUARD_EVENTS_PER_DAY,
        study_start=start,
        study_end=start + dt.timedelta(days=GUARD_DAYS),
    )
    plain = Study(StudyConfig(**base)).run_social_crawl()
    spilled = Study(
        StudyConfig(**base, memory_budget=GUARD_BUDGET)
    ).run_social_crawl()
    problems = []
    if spilled.n_segments == 0:
        problems.append(
            "digest guard never spilled; shrink GUARD_BUDGET"
        )
    if store_digest(plain) != store_digest(spilled):
        problems.append(
            "spilled study digest differs from in-memory digest"
        )
    spilled.cleanup()
    return problems


def check_floor() -> int:
    problems = check_digest_guard()
    if not OUT_PATH.exists():
        print(f"{OUT_PATH.name} not found; nothing to check against")
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        return 0
    baseline = json.loads(OUT_PATH.read_text())
    committed = baseline["runs"]["large"]["peak_rss_mb"]

    spec = {"days": LARGE_DAYS, "budget": ROW_BUDGET}
    fresh = run_in_subprocess(spec)
    cap = RSS_CAP_MB
    ceiling = committed * (1.0 + RSS_SLACK_FRACTION)
    print(
        f"large study: {fresh['crawls']} crawls, "
        f"{fresh['peak_rss_mb']:.1f} MB peak RSS "
        f"(cap {cap:.1f} MB, committed {committed:.1f} MB, "
        f"ceiling {ceiling:.1f} MB), {fresh['wall_seconds']:.1f}s"
    )
    if fresh["peak_rss_mb"] > cap:
        problems.append(
            f"peak RSS {fresh['peak_rss_mb']:.1f} MB exceeds "
            f"budget-derived cap {cap:.1f} MB"
        )
    if fresh["peak_rss_mb"] > ceiling:
        problems.append(
            f"peak RSS {fresh['peak_rss_mb']:.1f} MB regresses >"
            f"{RSS_SLACK_FRACTION:.0%} over committed "
            f"{committed:.1f} MB"
        )
    if fresh["crawls"] < 3_000_000:
        problems.append(
            f"large study produced {fresh['crawls']} crawls; "
            "the benchmark must cover >= 3M"
        )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print("OK: RSS stays under the spill-budget cap; digests match")
    return 0


def record() -> int:
    problems = check_digest_guard()
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    runs = {}
    for name, days in (("small", SMALL_DAYS), ("large", LARGE_DAYS)):
        spec = {"days": days, "budget": ROW_BUDGET}
        result = run_in_subprocess(spec)
        result["days"] = days
        runs[name] = result
        print(
            f"{name}: {result['crawls']} crawls in "
            f"{result['wall_seconds']:.1f}s, peak RSS "
            f"{result['peak_rss_mb']:.1f} MB "
            f"({result['segments']} spilled segments)"
        )
    crawl_ratio = runs["large"]["crawls"] / runs["small"]["crawls"]
    rss_ratio = runs["large"]["peak_rss_mb"] / runs["small"]["peak_rss_mb"]
    record_obj = {
        "recorded_at": dt.datetime.now(dt.timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "workload": {
            "seed": SEED,
            "n_domains": N_DOMAINS,
            "events_per_day": EVENTS_PER_DAY,
            "row_budget": ROW_BUDGET,
            "study_start": STUDY_START,
        },
        "runs": runs,
        "crawl_ratio": round(crawl_ratio, 2),
        "rss_ratio": round(rss_ratio, 2),
    }
    OUT_PATH.write_text(json.dumps(record_obj, indent=2) + "\n")
    print(
        f"wrote {OUT_PATH.name}: crawls x{crawl_ratio:.1f}, "
        f"peak RSS x{rss_ratio:.2f}"
    )
    if rss_ratio > crawl_ratio / 2:
        print("FAIL: RSS growth is not sub-linear in crawl count")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify RSS + digests against the committed baseline "
        "instead of recording a new one",
    )
    parser.add_argument(
        "--run-one",
        metavar="SPEC_JSON",
        default=None,
        help="internal: run one study in this process and print its "
        "numbers as JSON",
    )
    args = parser.parse_args(argv)
    if args.run_one is not None:
        print(json.dumps(run_one(json.loads(args.run_one))))
        return 0
    if args.check:
        return check_floor()
    return record()


if __name__ == "__main__":
    sys.exit(main())
