"""Section 5.2: the discussion's quantitative claims.

The discussion makes several measurable statements beyond the numbered
figures:

* 45% of Quantcast's customers adopt the accept-in-1-click /
  reject-in-many configuration the French regulator advises against,
  and 1-click rejection is even rarer at TrustArc (7%) and OneTrust
  (2.4%);
* Quantcast and OneTrust "appear to be establishing dominance in the
  EU+UK and the US respectively" -- multiple distinct coalitions rather
  than the single global coalition theory predicts;
* CMPs share one consent decision across their whole customer base
  ("the commodification of consent").

This bench reproduces each from the synthetic ecosystem, plus a
compliance audit of the kind the conclusion says regulators could run
at scale.
"""

import datetime as dt

from benchmarks.conftest import MAY_2020, report
from repro.core.compliance import audit_captures
from repro.core.concentration import hhi_series, jurisdiction_report
from repro.core.customization import classify_dialogs, dialogs_from_captures
from repro.tcf.globalcookie import shared_consent_reach


def test_discussion_asymmetric_choice(benchmark, toplist_crawl_may):
    captures = toplist_crawl_may.captures_for("eu-univ-extended")
    dialogs = dialogs_from_captures(captures)
    customization = benchmark(classify_dialogs, dialogs)

    # For TrustArc the paper separates *instant* 1-click opt-outs (7%)
    # from first-page opt-outs that trigger the partner waterfall (12%);
    # both are "1 click" structurally, so we compare the instant share
    # via the classification category.
    qc = customization.one_click_reject_share("quantcast")
    ta_instant = customization.category_share("trustarc", "direct-reject")
    ta_waterfall = customization.category_share("trustarc", "waterfall-reject")
    ot = customization.one_click_reject_share("onetrust")
    rows = [
        f"quantcast  1-click reject:        {qc * 100:5.1f}%  (paper: 55%)",
        f"trustarc   instant 1-click:       {ta_instant * 100:5.1f}%  (paper: 7%)",
        f"trustarc   1-click w/ waterfall:  {ta_waterfall * 100:5.1f}%  (paper: 12%)",
        f"onetrust   1-click reject:        {ot * 100:5.1f}%  (paper: 2.4%)",
    ]
    report("Section 5.2: 1-click rejection by CMP", rows)

    assert 0.4 < qc < 0.7
    # TrustArc and OneTrust make 1-click rejection much rarer.
    assert ta_instant < qc / 3
    assert ot < qc / 4


def test_discussion_jurisdictional_coalitions(benchmark, bench_study):
    world = bench_study.world
    report_obj = benchmark.pedantic(
        jurisdiction_report, args=(world, MAY_2020),
        kwargs={"max_rank": 10_000}, rounds=1, iterations=1,
    )
    hhi_values = hhi_series(
        world,
        [dt.date(2018, 7, 1), dt.date(2019, 7, 1), dt.date(2020, 7, 1)],
        max_rank=10_000,
    )
    reach = shared_consent_reach(world, MAY_2020, max_rank=10_000)
    rows = [
        f"EU+UK TLD leader:  {report_obj.eu_uk_leader} "
        f"({report_obj.leader_share('eu-uk') * 100:.0f}% of EU+UK CMP sites)",
        f"other TLD leader:  {report_obj.other_leader} "
        f"({report_obj.leader_share('other') * 100:.0f}%)",
        f"distinct coalitions: {report_obj.distinct_coalitions} "
        "(paper: no single global coalition)",
        "market HHI over time: "
        + "  ".join(f"{d.year}={v:.3f}" for d, v in hhi_values),
        "consent reach (sites sharing one decision): "
        + "  ".join(f"{k}={v}" for k, v in sorted(reach.items(), key=lambda x: -x[1])),
    ]
    report("Section 5.2: jurisdictions and coalitions", rows)

    assert report_obj.eu_uk_leader == "quantcast"
    assert report_obj.other_leader == "onetrust"
    assert report_obj.distinct_coalitions
    # Several hundred sites share one OneTrust/Quantcast decision.
    assert reach["onetrust"] > 200


def test_discussion_do_not_sell_census(benchmark, bench_study, toplist_crawl_may):
    """The CCPA surface: "Do Not Sell" buttons and California footer
    links, concentrated on OneTrust's CCPA-era configurations, with the
    ground-truth share rising across the law's effective date.
    """
    from repro.core.ccpa import ccpa_census, dns_share_over_time

    captures = toplist_crawl_may.captures_for("eu-univ-extended")
    census = benchmark(ccpa_census, captures)
    series = dns_share_over_time(
        bench_study.world,
        [dt.date(2019, 6, 1), dt.date(2020, 1, 15), dt.date(2020, 6, 1)],
        max_rank=10_000,
    )
    rows = [
        f"dialogs checked: {census.sites_checked}   "
        f"with a Do-Not-Sell affordance: {census.n_sites} "
        f"({census.share * 100:.1f}%)",
        f"surfaces: {dict(census.by_surface())}",
        f"by CMP: {dict(census.by_cmp())}",
        "ground-truth share over time: "
        + "  ".join(f"{d}={v * 100:.2f}%" for d, v in series),
    ]
    report("CCPA: the Do-Not-Sell census", rows)

    assert census.n_sites > 0
    assert census.by_cmp().most_common(1)[0][0] == "onetrust"
    # Ground truth rises across the CCPA boundary.
    assert series[-1][1] > series[0][1]


def test_discussion_dialog_burden(benchmark, bench_study):
    """The user-side value of consent sharing.

    Simulates one user's browsing day under v1 global scope (one
    decision per CMP coalition) vs v2 service-specific scope (every
    site asks) -- the mechanism behind the "commodification of consent"
    the paper discusses.
    """
    from repro.users.session import compare_consent_scopes

    reports = benchmark.pedantic(
        compare_consent_scopes,
        args=(bench_study.world, MAY_2020),
        kwargs={"n_visits": 2_000, "seed": 11, "max_rank": 10_000},
        rounds=1, iterations=1,
    )
    g, s = reports["global"], reports["service"]
    rows = [
        f"visits: {g.n_visits}   CMP-site visits: {g.cmp_site_visits}",
        f"global scope:  {g.dialogs_shown} dialogs, "
        f"{g.total_interaction_seconds:.0f}s of interaction",
        f"service scope: {s.dialogs_shown} dialogs, "
        f"{s.total_interaction_seconds:.0f}s of interaction",
        f"dialog burden: {g.dialog_burden:.2f} vs {s.dialog_burden:.2f} "
        "dialogs per CMP-site visit",
    ]
    report("Section 5.2: consent sharing vs per-site consent", rows)

    assert s.dialogs_shown > 3 * g.dialogs_shown
    assert s.total_interaction_seconds > g.total_interaction_seconds
    assert g.dialog_burden < 0.3


def test_discussion_compliance_audit(benchmark, toplist_crawl_may):
    captures = toplist_crawl_may.captures_for("eu-univ-extended")
    audit = benchmark(audit_captures, captures)

    rows = [
        f"sites audited: {audit.sites_audited}   "
        f"with findings: {audit.sites_with_findings}"
    ]
    for code, count, rate in audit.rows():
        rows.append(f"{code:<26} {count:>4} findings  "
                    f"({rate * 100:.1f}% of sites)")
    report("Section 7: auditing privacy practices at scale", rows)

    assert audit.sites_audited > 500
    # The asymmetric pattern is the dominant finding.
    by_code = audit.by_code()
    assert by_code["asymmetric-choice"] == max(by_code.values())
    assert audit.rate("non-affirmative-wording") < 0.10
