"""Record the throughput baseline to ``BENCH_throughput.json``.

Standalone companion to ``bench_throughput.py``: runs the hot-path
workloads once per configuration and writes a compact JSON record, so
the perf trajectory of the crawl substrate is tracked in-repo from PR
to PR. Run from the repository root:

    PYTHONPATH=src python benchmarks/record_throughput.py

Two guard rails keep the record honest:

* **Single-core runners.** Parallel speedup numbers measured with
  ``os.cpu_count() == 1`` are meaningless -- every backend time-slices
  one core, so "speedup" only measures fan-out overhead. On such a
  machine the script warns loudly, stamps ``single_core_warning`` into
  the record, and omits ``speedup_vs_serial`` from the parallel rows
  (pass ``--strict-multicore`` to refuse outright, for CI runners that
  are supposed to be multi-core).
* **Serial floor (``--check``).** Re-times the serial window best-of-N
  and fails if it regressed more than 20% against the committed
  baseline. ``make bench-throughput`` wires this as the non-matrix CI
  perf gate; it never writes the JSON.

The parallel rows exercise the sharded executor on the same two-week
social window as the serial row and verify the determinism contract
(identical observation sequences) while timing the fan-out. Each row
records the per-shard busy/payload breakdown plus the merge time, so a
regression is attributable to compute, pickling, or collection.
"""

import argparse
import datetime as dt
import json
import os
import platform as platform_mod
import sys
import time
from pathlib import Path

from repro.crawler.browser import crawl_url
from repro.crawler.capture import EU_UNIVERSITY
from repro.crawler.executor import CrawlExecutor, ExecutorConfig
from repro.crawler.platform import NetographPlatform, PlatformConfig
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.detect.engine import detect_cmp
from repro.net.url import URL
from repro.web.worldgen import World, WorldConfig

WINDOW = (dt.date(2020, 4, 1), dt.date(2020, 4, 15))
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: ``--check`` fails when fresh serial throughput drops below this
#: fraction of the committed baseline (a >20% regression).
FLOOR_FRACTION = 0.8
#: Timing repetitions for the serial row (best-of -- shields the floor
#: guard from scheduler noise on shared runners).
SERIAL_REPS = 3


def _bench_world():
    return World(WorldConfig(seed=7, n_domains=20_000))


def _platform(world):
    return NetographPlatform(
        world,
        stream=SocialShareStream(world, StreamConfig(events_per_day=600)),
        config=PlatformConfig(),
    )


def time_crawl_and_detect(world, n_urls=300):
    urls = [
        URL.parse(f"https://www.{world.site(r).domain}/")
        for r in range(1, n_urls + 1)
    ]
    start = time.perf_counter()
    hits = 0
    for url in urls:
        capture = crawl_url(world, url, when=dt.datetime(2020, 5, 15, 12),
                            vantage=EU_UNIVERSITY)
        if detect_cmp(capture).cmp_key:
            hits += 1
    seconds = time.perf_counter() - start
    return {
        "urls": n_urls,
        "seconds": round(seconds, 4),
        "urls_per_second": round(n_urls / seconds, 1),
        "cmp_hits": hits,
    }


def time_platform_window(world, workers, backend):
    executor = (
        CrawlExecutor(ExecutorConfig(workers=workers, backend=backend))
        if workers > 1
        else None
    )
    platform = _platform(world)
    start = time.perf_counter()
    store = platform.run(*WINDOW, executor=executor)
    seconds = time.perf_counter() - start
    keys = [
        (o.domain, o.date.isoformat(), o.cmp_key, o.vantage.region)
        for o in store.observations
    ]
    row = {
        "workers": workers,
        "backend": backend,
        "seconds": round(seconds, 3),
        "crawls": store.n_captures,
        "crawls_per_second": round(store.n_captures / seconds, 1),
    }
    exec_stats = platform.stats.executor
    if exec_stats is not None:
        row["n_shards"] = exec_stats.n_shards
        row["busy_seconds"] = round(exec_stats.busy_seconds, 3)
        row["merge_seconds"] = round(exec_stats.merge_seconds, 4)
        row["payload_bytes"] = exec_stats.payload_bytes
        # Fan-out overhead not spent computing or merging: pool setup,
        # payload pickling, result collection.
        row["overhead_seconds"] = round(
            max(
                0.0,
                exec_stats.wall_seconds
                - exec_stats.busy_seconds / max(1, workers)
                - exec_stats.merge_seconds,
            ),
            3,
        )
        row["shards"] = [
            {
                "shard_id": s.shard_id,
                "tasks": s.tasks,
                "crawls": s.crawls,
                "busy_seconds": round(s.seconds, 4),
                "payload_bytes": s.payload_bytes,
            }
            for s in exec_stats.shards
        ]
    return row, keys


def time_serial_best(world, reps=SERIAL_REPS):
    """Best-of-*reps* serial window timing (noise-shielded)."""
    best_row, best_keys = None, None
    for _ in range(reps):
        row, keys = time_platform_window(world, 1, "serial")
        if best_row is None or row["seconds"] < best_row["seconds"]:
            best_row, best_keys = row, keys
    best_row["timing_reps"] = reps
    return best_row, best_keys


def check_floor(out_path=OUT_PATH, floor=FLOOR_FRACTION):
    """Fail (exit 1) if serial throughput regressed >20% vs *out_path*."""
    if not out_path.exists():
        print(f"no committed baseline at {out_path}; nothing to check")
        return 0
    committed = json.loads(out_path.read_text())
    committed_serial = next(
        (
            row
            for row in committed.get("parallel_crawl", [])
            if row.get("backend") == "serial"
        ),
        None,
    )
    if committed_serial is None:
        print(f"{out_path} has no serial row; nothing to check")
        return 0
    committed_rate = committed_serial["crawls_per_second"]

    world = _bench_world()
    _platform(world).run(*WINDOW)  # warm the lazy site cache
    row, _ = time_serial_best(world)
    fresh_rate = row["crawls_per_second"]
    ratio = fresh_rate / committed_rate
    verdict = "OK" if ratio >= floor else "FAIL"
    print(
        f"serial throughput floor: fresh {fresh_rate:.1f} crawls/s vs "
        f"committed {committed_rate:.1f} ({ratio:.2f}x, floor "
        f"{floor:.2f}x) -- {verdict}"
    )
    if ratio < floor:
        print(
            "serial crawl throughput regressed more than "
            f"{(1 - floor) * 100:.0f}% against BENCH_throughput.json; "
            "fix the regression or re-record the baseline with "
            "`PYTHONPATH=src python benchmarks/record_throughput.py`."
        )
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare fresh serial throughput against the committed "
        "baseline and fail on a >20%% regression (writes nothing)",
    )
    parser.add_argument(
        "--strict-multicore",
        action="store_true",
        help="refuse to record on a single-core machine instead of "
        "annotating the record with a warning",
    )
    args = parser.parse_args(argv)

    if args.check:
        return check_floor()

    cpu_count = os.cpu_count() or 1
    single_core = cpu_count <= 1
    if single_core:
        message = (
            "only one CPU core is available: parallel rows measure "
            "fan-out overhead, not speedup, and speedup_vs_serial is "
            "omitted; re-record on multi-core hardware for meaningful "
            "parallel numbers"
        )
        if args.strict_multicore:
            print(f"refusing to record baseline: {message}", file=sys.stderr)
            return 2
        print(f"WARNING: {message}", file=sys.stderr)

    world = _bench_world()
    crawl_detect = time_crawl_and_detect(world)

    # Warm the lazy site cache so every row times crawling, not world
    # generation (the serial row would otherwise pay it alone).
    _platform(world).run(*WINDOW)

    serial_row, baseline_keys = time_serial_best(world)
    serial_seconds = serial_row["seconds"]
    rows = [serial_row]
    print(f"  1xserial   {serial_row['seconds']:7.3f}s  "
          f"{serial_row['crawls_per_second']:8.1f} crawls/s")
    for workers, backend in ((2, "process"), (4, "process"), (4, "thread")):
        row, keys = time_platform_window(world, workers, backend)
        assert keys == baseline_keys, (
            f"determinism violated: {workers}x{backend} diverged"
        )
        if not single_core:
            row["speedup_vs_serial"] = round(
                serial_seconds / row["seconds"], 2
            )
        rows.append(row)
        print(f"  {workers}x{backend:<8} {row['seconds']:7.3f}s  "
              f"{row['crawls_per_second']:8.1f} crawls/s")

    record = {
        "recorded_at": dt.datetime.now(dt.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform_mod.python_version(),
        "cpu_count": cpu_count,
        "window_days": (WINDOW[1] - WINDOW[0]).days,
        "crawl_and_detect": crawl_detect,
        "parallel_crawl": rows,
        "determinism_verified": True,
    }
    if single_core:
        record["single_core_warning"] = (
            "recorded with cpu_count == 1; parallel rows reflect "
            "fan-out overhead only and carry no speedup_vs_serial"
        )
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"baseline written to {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
