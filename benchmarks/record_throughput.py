"""Record the throughput baseline to ``BENCH_throughput.json``.

Standalone companion to ``bench_throughput.py``: runs the hot-path
workloads once per configuration and writes a compact JSON record, so
the perf trajectory of the crawl substrate is tracked in-repo from PR
to PR. Run from the repository root:

    PYTHONPATH=src python benchmarks/record_throughput.py

The parallel rows exercise the sharded executor on the same two-week
social window as the serial row and verify the determinism contract
(identical observation sequences) while timing the fan-out. Wall-clock
speedup is bounded by the machine's core count, which is recorded next
to the numbers.
"""

import datetime as dt
import json
import os
import platform as platform_mod
import sys
import time
from pathlib import Path

from repro.crawler.browser import crawl_url
from repro.crawler.capture import EU_UNIVERSITY
from repro.crawler.executor import CrawlExecutor, ExecutorConfig
from repro.crawler.platform import NetographPlatform, PlatformConfig
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.detect.engine import detect_cmp
from repro.net.url import URL
from repro.web.worldgen import World, WorldConfig

WINDOW = (dt.date(2020, 4, 1), dt.date(2020, 4, 15))
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def _bench_world():
    return World(WorldConfig(seed=7, n_domains=20_000))


def _platform(world):
    return NetographPlatform(
        world,
        stream=SocialShareStream(world, StreamConfig(events_per_day=600)),
        config=PlatformConfig(),
    )


def time_crawl_and_detect(world, n_urls=300):
    urls = [
        URL.parse(f"https://www.{world.site(r).domain}/")
        for r in range(1, n_urls + 1)
    ]
    start = time.perf_counter()
    hits = 0
    for url in urls:
        capture = crawl_url(world, url, when=dt.datetime(2020, 5, 15, 12),
                            vantage=EU_UNIVERSITY)
        if detect_cmp(capture).cmp_key:
            hits += 1
    seconds = time.perf_counter() - start
    return {
        "urls": n_urls,
        "seconds": round(seconds, 4),
        "urls_per_second": round(n_urls / seconds, 1),
        "cmp_hits": hits,
    }


def time_platform_window(world, workers, backend):
    executor = (
        CrawlExecutor(ExecutorConfig(workers=workers, backend=backend))
        if workers > 1
        else None
    )
    platform = _platform(world)
    start = time.perf_counter()
    store = platform.run(*WINDOW, executor=executor)
    seconds = time.perf_counter() - start
    keys = [
        (o.domain, o.date.isoformat(), o.cmp_key, o.vantage.region)
        for o in store.observations
    ]
    row = {
        "workers": workers,
        "backend": backend,
        "seconds": round(seconds, 3),
        "crawls": store.n_captures,
        "crawls_per_second": round(store.n_captures / seconds, 1),
    }
    exec_stats = platform.stats.executor
    if exec_stats is not None:
        row["n_shards"] = exec_stats.n_shards
        row["busy_seconds"] = round(exec_stats.busy_seconds, 3)
        row["merge_seconds"] = round(exec_stats.merge_seconds, 4)
    return row, keys


def main():
    world = _bench_world()
    crawl_detect = time_crawl_and_detect(world)

    # Warm the lazy site cache so every row times crawling, not world
    # generation (the serial row would otherwise pay it alone).
    _platform(world).run(*WINDOW)

    rows = []
    baseline_keys = None
    serial_seconds = None
    for workers, backend in ((1, "serial"), (2, "process"), (4, "process"),
                             (4, "thread")):
        row, keys = time_platform_window(world, workers, backend)
        if baseline_keys is None:
            baseline_keys = keys
            serial_seconds = row["seconds"]
        else:
            assert keys == baseline_keys, (
                f"determinism violated: {workers}x{backend} diverged"
            )
            row["speedup_vs_serial"] = round(serial_seconds / row["seconds"], 2)
        rows.append(row)
        print(f"  {workers}x{backend:<8} {row['seconds']:7.3f}s  "
              f"{row['crawls_per_second']:8.1f} crawls/s")

    record = {
        "recorded_at": dt.datetime.now(dt.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform_mod.python_version(),
        "cpu_count": os.cpu_count(),
        "window_days": (WINDOW[1] - WINDOW[0]).days,
        "crawl_and_detect": crawl_detect,
        "parallel_crawl": rows,
        "determinism_verified": True,
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"baseline written to {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
