"""Record observability overhead to ``BENCH_obs.json``.

Companion to ``record_throughput.py``: times the same two-week social
window three ways -- uninstrumented default (the shared null backend),
explicitly disabled (``NullObservability``), and fully enabled (metrics
+ tracing) -- and records the relative overhead next to the throughput
baseline. Also asserts the bit-identical contract: the observation
sequence must not depend on whether observability is on. Run from the
repository root:

    PYTHONPATH=src python benchmarks/record_obs_overhead.py

The acceptance budget is <5% disabled-mode overhead versus the plain
run; single runs on a noisy machine can jitter either way, so the
best-of-N of interleaved repetitions is recorded.
"""

import datetime as dt
import json
import os
import platform as platform_mod
import sys
import time
from pathlib import Path

from repro.crawler.platform import NetographPlatform, PlatformConfig
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.obs import NullObservability, Observability
from repro.web.worldgen import World, WorldConfig

WINDOW = (dt.date(2020, 4, 1), dt.date(2020, 4, 15))
REPEATS = 9
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def run_window(world, obs):
    platform = NetographPlatform(
        world,
        stream=SocialShareStream(world, StreamConfig(events_per_day=600)),
        config=PlatformConfig(),
        obs=obs,
    )
    start = time.perf_counter()
    store = platform.run(*WINDOW)
    seconds = time.perf_counter() - start
    keys = [
        (o.domain, o.date.isoformat(), o.cmp_key, o.vantage.region)
        for o in store.observations
    ]
    return seconds, keys


def main():
    world = World(WorldConfig(seed=7, n_domains=20_000))
    # Warm the lazy site cache so no mode pays world generation.
    run_window(world, None)

    modes = {
        "default_null": lambda: None,
        "explicit_null": NullObservability,
        "enabled": Observability,
    }
    timings = {name: [] for name in modes}
    baseline_keys = None
    order = list(modes)
    for rep in range(REPEATS):
        # Rotate the mode order so per-rep machine drift (CPU contention,
        # cache state) does not bias one mode systematically.
        for name in order[rep % len(order):] + order[:rep % len(order)]:
            seconds, keys = run_window(world, modes[name]())
            timings[name].append(seconds)
            if baseline_keys is None:
                baseline_keys = keys
            else:
                assert keys == baseline_keys, (
                    f"bit-identical contract violated in mode {name!r}"
                )

    # Best-of-N: on a contended machine the minimum approximates the
    # true cost; best drift with background load.
    best = {name: min(values) for name, values in timings.items()}
    base = best["default_null"]
    # default_null and explicit_null execute identical code; their delta
    # is the measurement noise floor on this machine.
    noise_floor = abs(best["explicit_null"] / base - 1.0) * 100
    record = {
        "recorded_at": dt.datetime.now(dt.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform_mod.python_version(),
        "cpu_count": os.cpu_count(),
        "window_days": (WINDOW[1] - WINDOW[0]).days,
        "repeats": REPEATS,
        "best_seconds": {k: round(v, 4) for k, v in best.items()},
        "overhead_pct_vs_default": {
            name: round((best[name] / base - 1.0) * 100, 2)
            for name in ("explicit_null", "enabled")
        },
        "noise_floor_pct": round(noise_floor, 2),
        "bit_identical_verified": True,
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    for name, value in best.items():
        print(f"  {name:<14} best {value:7.3f}s")
    print(f"  enabled overhead: "
          f"{record['overhead_pct_vs_default']['enabled']:+.2f}%")
    print(f"baseline written to {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
