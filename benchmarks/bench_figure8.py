"""Figure 8: lawful-basis changes by existing GVL members.

Paper: on net, more vendors obtain consent for purposes they previously
claimed as legitimate interest than the other way round; activity peaks
around the GDPR coming into effect and again in March/April 2020; for
every purpose, at least a fifth of vendors claim legitimate interest.

The bench times the per-version change-event extraction (the stacked
series behind Figure 8).
"""

import datetime as dt

from benchmarks.conftest import report
from repro.core.gvl_analysis import GvlAnalysis


def test_figure8_purpose_changes(benchmark, full_gvl_history):
    analysis = GvlAnalysis(full_gvl_history)
    events = benchmark(analysis.change_events)

    report(
        "Figure 8: change events by kind",
        [f"{kind:<16} {n}" for kind, n in sorted(events.items())],
    )
    net = analysis.net_li_to_consent()
    peaks = analysis.activity_peaks(5)
    li_shares = analysis.li_share_by_purpose()
    report(
        "Figure 8: headline numbers",
        [
            f"net LI -> consent: {net:+d}  (paper: positive)",
            f"activity peaks: {[(str(d), n) for d, n in peaks]}",
            "LI share by purpose: "
            + "  ".join(f"P{p}={s * 100:.0f}%" for p, s in li_shares.items()),
        ],
    )

    assert net > 0
    assert events["li-to-consent"] > events["consent-to-li"]
    # Most activity takes place around the GDPR coming into effect...
    peak_dates = [d for d, _ in peaks]
    assert any(d.year == 2018 for d in peak_dates)
    # ...followed by another bout in March/April 2020: the busiest 2020
    # transitions fall in that window.
    changes_2020 = [
        (date, sum(c.values()))
        for date, c in analysis.change_series()
        if date.year == 2020
    ]
    busiest_2020 = max(changes_2020, key=lambda x: x[1])[0]
    assert busiest_2020.month in (2, 3, 4, 5)
    # At least ~a fifth of vendors claim LI for every purpose.
    assert all(share > 0.15 for share in li_shares.values())
    benchmark.extra_info["events"] = dict(events)


def test_figure8_membership_series(benchmark, full_gvl_history):
    analysis = GvlAnalysis(full_gvl_history)
    series = benchmark(analysis.membership_series)

    joins = sum(j for _, j, _ in series)
    leaves = sum(l for _, _, l in series)
    report(
        "Figure 8: membership dynamics",
        [f"total joins: {joins}", f"total leaves: {leaves}"],
    )
    assert joins > leaves  # the list grows
