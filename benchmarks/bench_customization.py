"""Section 4.1: publisher customization of consent dialogs (I3).

Paper (EU-university sample): OneTrust -- 61% conventional banner, 2.4%
opt-out banner (40% of which need a confirmation click), 5.5% script
banner, 7.5% footer link only; Quantcast -- 55% 1-click reject-all, 87%
affirmative accept wording; TrustArc -- 7% instant opt-out, 12%
waterfall opt-out, 4.4% hidden from EU; about 8% of sites overall use
the CMP for its API only.

The bench classifies every dialog captured by the EU-university
configuration of the Tranco-10k crawl.
"""

from benchmarks.conftest import report
from repro.core.customization import (
    CATEGORIES,
    classify_dialogs,
    dialogs_from_captures,
)


def test_customization_classification(benchmark, toplist_crawl_may):
    captures = toplist_crawl_may.captures_for("eu-univ-extended")
    dialogs = dialogs_from_captures(captures)
    # The API-only sites embed the CMP without any dialog DOM; the
    # crawl still detects them over the network. For the I3 analysis we
    # classify the captured dialog descriptors.
    report_obj = benchmark(classify_dialogs, dialogs)

    rows = []
    for cmp_key in ("onetrust", "quantcast", "trustarc"):
        n = report_obj.n_sites(cmp_key)
        if n == 0:
            continue
        shares = "  ".join(
            f"{cat}={report_obj.categories[cmp_key][cat] / n * 100:.1f}%"
            for cat in CATEGORIES
            if report_obj.categories[cmp_key][cat]
        )
        rows.append(f"{cmp_key:<10} (n={n:>3}): {shares}")
    rows.append(
        "quantcast 1-click reject: "
        f"{report_obj.one_click_reject_share('quantcast') * 100:.1f}% "
        "(paper: 55%)"
    )
    rows.append(
        "quantcast affirmative wording: "
        f"{report_obj.affirmative_wording_share('quantcast') * 100:.1f}% "
        "(paper: 87%)"
    )
    rows.append(
        "API-only share overall: "
        f"{report_obj.api_only_share_overall() * 100:.1f}% (paper: ~8%)"
    )
    report("Section 4.1: customization", rows)

    assert 0.45 < report_obj.one_click_reject_share("quantcast") < 0.68
    assert 0.78 < report_obj.affirmative_wording_share("quantcast") < 0.95
    assert report_obj.category_share("onetrust", "conventional-banner") > 0.45
    assert 0.02 < report_obj.api_only_share_overall() < 0.15
    # TrustArc waterfall opt-outs exist in the sample (they are the
    # sites Figure 9 measures).
    assert report_obj.categories["trustarc"]["waterfall-reject"] > 0
