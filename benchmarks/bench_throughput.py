"""Micro-benchmarks of the hot paths.

Not a paper figure -- these measure the library's own throughput so
regressions in the simulation substrate are visible: world generation,
page rendering, CMP detection, consent-string codec, PSL lookups, and
the sharded crawl executor (serial vs. worker pool on one workload).

``benchmarks/record_throughput.py`` runs the same workloads standalone
and records the ``BENCH_throughput.json`` baseline tracked in the repo.
"""

import datetime as dt
import random

import pytest

from repro.crawler.browser import crawl_url
from repro.crawler.capture import EU_UNIVERSITY
from repro.crawler.executor import CrawlExecutor, ExecutorConfig
from repro.crawler.platform import NetographPlatform, PlatformConfig
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.detect.engine import detect_cmp
from repro.net.psl import default_psl
from repro.net.url import URL
from repro.tcf.consentstring import ConsentString, decode_consent_string
from repro.web.serving import VisitSettings, render_page
from repro.web.worldgen import World, WorldConfig

MAY = dt.date(2020, 5, 15)
NOON = dt.datetime(2020, 5, 15, 12)

#: The parallel-crawl benchmark window (~6.5k crawls on the bench world).
PARALLEL_WINDOW = (dt.date(2020, 4, 1), dt.date(2020, 4, 15))


def test_throughput_world_generation(benchmark):
    """Sites generated per second (fresh worlds each round)."""
    counter = iter(range(10_000_000))

    def generate_batch():
        world = World(WorldConfig(seed=next(counter) + 100, n_domains=5_000))
        return [world.site(r) for r in range(1, 501)]

    sites = benchmark(generate_batch)
    assert len(sites) == 500


def test_throughput_page_render(benchmark, bench_study):
    world = bench_study.world
    urls = [
        URL.parse(f"https://www.{world.site(r).domain}/")
        for r in range(1, 101)
        if world.site(r).redirects_to is None
    ]
    settings = VisitSettings(date=MAY, region="EU", address_space="cloud")

    def render_batch():
        return [render_page(world, url, settings) for url in urls]

    pages = benchmark(render_batch)
    assert any(p.ok for p in pages)


def test_throughput_crawl_and_detect(benchmark, bench_study):
    world = bench_study.world
    urls = [
        URL.parse(f"https://www.{world.site(r).domain}/")
        for r in range(1, 101)
    ]

    def crawl_batch():
        hits = 0
        for url in urls:
            cap = crawl_url(world, url, when=NOON, vantage=EU_UNIVERSITY)
            if detect_cmp(cap).cmp_key:
                hits += 1
        return hits

    hits = benchmark(crawl_batch)
    assert hits >= 0


def _platform_for(world):
    return NetographPlatform(
        world,
        stream=SocialShareStream(world, StreamConfig(events_per_day=600)),
        config=PlatformConfig(),
    )


_parallel_observations = {}


@pytest.mark.parametrize(
    "workers,backend",
    [(1, "serial"), (2, "process"), (4, "process"), (4, "thread")],
)
def test_throughput_parallel_crawl(benchmark, bench_study, workers, backend):
    """Crawl-phase throughput, serial vs. sharded worker pools.

    Every configuration runs the identical two-week social window; the
    cross-check below asserts the executor's determinism contract on the
    benchmarked stores themselves. Speedup over the ``(1, "serial")``
    row is bounded by the machine's core count -- on a single-core runner
    the parallel rows only measure fan-out overhead.
    """
    world = bench_study.world
    executor = (
        CrawlExecutor(ExecutorConfig(workers=workers, backend=backend))
        if workers > 1
        else None
    )

    def crawl_window():
        platform = _platform_for(world)
        return platform.run(*PARALLEL_WINDOW, executor=executor)

    store = benchmark.pedantic(crawl_window, rounds=2, iterations=1)
    assert store.n_captures > 1_000
    keys = [
        (o.domain, o.date, o.cmp_key, o.vantage.region)
        for o in store.observations
    ]
    baseline = _parallel_observations.setdefault("keys", keys)
    assert keys == baseline  # any worker count => identical observations


def test_throughput_consent_string_codec(benchmark):
    rng = random.Random(0)
    strings = []
    for _ in range(50):
        consents = frozenset(
            v for v in range(1, 600) if rng.random() < 0.6
        )
        strings.append(
            ConsentString.build(
                cmp_id=10, vendor_list_version=180, max_vendor_id=600,
                allowed_purposes=(1, 2, 3), vendor_consents=consents,
            ).encode()
        )

    def decode_batch():
        return [decode_consent_string(s) for s in strings]

    decoded = benchmark(decode_batch)
    assert len(decoded) == 50


def test_throughput_psl_lookup(benchmark, bench_study):
    psl = default_psl()
    world = bench_study.world
    hosts = [f"www.{world.site(r).domain}" for r in range(1, 501)]

    def lookup_batch():
        return [psl.registrable_domain(h) for h in hosts]

    domains = benchmark(lookup_batch)
    assert all(d is not None for d in domains)
