"""Micro-benchmarks of the hot paths.

Not a paper figure -- these measure the library's own throughput so
regressions in the simulation substrate are visible: world generation,
page rendering, CMP detection, consent-string codec, and PSL lookups.
"""

import datetime as dt
import random

from repro.crawler.browser import crawl_url
from repro.crawler.capture import EU_UNIVERSITY
from repro.detect.engine import detect_cmp
from repro.net.psl import default_psl
from repro.net.url import URL
from repro.tcf.consentstring import ConsentString, decode_consent_string
from repro.web.serving import VisitSettings, render_page
from repro.web.worldgen import World, WorldConfig

MAY = dt.date(2020, 5, 15)
NOON = dt.datetime(2020, 5, 15, 12)


def test_throughput_world_generation(benchmark):
    """Sites generated per second (fresh worlds each round)."""
    counter = iter(range(10_000_000))

    def generate_batch():
        world = World(WorldConfig(seed=next(counter) + 100, n_domains=5_000))
        return [world.site(r) for r in range(1, 501)]

    sites = benchmark(generate_batch)
    assert len(sites) == 500


def test_throughput_page_render(benchmark, bench_study):
    world = bench_study.world
    urls = [
        URL.parse(f"https://www.{world.site(r).domain}/")
        for r in range(1, 101)
        if world.site(r).redirects_to is None
    ]
    settings = VisitSettings(date=MAY, region="EU", address_space="cloud")

    def render_batch():
        return [render_page(world, url, settings) for url in urls]

    pages = benchmark(render_batch)
    assert any(p.ok for p in pages)


def test_throughput_crawl_and_detect(benchmark, bench_study):
    world = bench_study.world
    urls = [
        URL.parse(f"https://www.{world.site(r).domain}/")
        for r in range(1, 101)
    ]

    def crawl_batch():
        hits = 0
        for url in urls:
            cap = crawl_url(world, url, when=NOON, vantage=EU_UNIVERSITY)
            if detect_cmp(cap).cmp_key:
                hits += 1
        return hits

    hits = benchmark(crawl_batch)
    assert hits >= 0


def test_throughput_consent_string_codec(benchmark):
    rng = random.Random(0)
    strings = []
    for _ in range(50):
        consents = frozenset(
            v for v in range(1, 600) if rng.random() < 0.6
        )
        strings.append(
            ConsentString.build(
                cmp_id=10, vendor_list_version=180, max_vendor_id=600,
                allowed_purposes=(1, 2, 3), vendor_consents=consents,
            ).encode()
        )

    def decode_batch():
        return [decode_consent_string(s) for s in strings]

    decoded = benchmark(decode_batch)
    assert len(decoded) == 50


def test_throughput_psl_lookup(benchmark, bench_study):
    psl = default_psl()
    world = bench_study.world
    hosts = [f"www.{world.site(r).domain}" for r in range(1, 501)]

    def lookup_batch():
        return [psl.registrable_domain(h) for h in hosts]

    domains = benchmark(lookup_batch)
    assert all(d is not None for d in domains)
