"""Sections 3.4/3.5: platform-level statistics.

Paper: 161M captures of 4.2M unique domains (we reproduce the pipeline
at ~10^4 scale); the dedup rules skip about 40% of submitted URLs; 1076
of the Tranco-10k domains were never shared on social media (315
unreachable, 70 HTTP errors, 4 invalid, 192 redirects counted as their
target, ~495 infrastructure); for 99.8% of domains the daily share of
CMP captures is consistently below 5% or above 95%; double-CMP
overcounting affects ~0.01% of captures.
"""

import datetime as dt

from benchmarks.conftest import report
from repro.core.adoption import daily_share_consistency
from repro.crawler.platform import NetographPlatform, PlatformConfig
from repro.crawler.seeds import SocialShareStream, StreamConfig


def test_pipeline_throughput_and_stats(benchmark, bench_study):
    """Times one month of the full platform pipeline end to end."""
    world = bench_study.world

    def run_month():
        platform = NetographPlatform(
            world,
            stream=SocialShareStream(
                world, StreamConfig(seed=8, events_per_day=1_500)
            ),
            config=PlatformConfig(seed=9),
        )
        store = platform.run(dt.date(2020, 4, 1), dt.date(2020, 5, 1))
        return platform, store

    platform, store = benchmark.pedantic(run_month, rounds=1, iterations=1)

    skip_rate = platform.queue.stats.skip_rate
    consistency = daily_share_consistency(store.by_domain())
    rows = [
        f"captures: {store.n_captures:,}   "
        f"unique domains: {store.unique_domains:,}   "
        f"HTTP requests: {store.total_requests:,}",
        f"queue skip rate: {skip_rate * 100:.1f}%  (paper: ~40%)",
        f"crawl failure rate: {platform.stats.failure_rate * 100:.1f}%",
        f"daily-share consistency: {consistency * 100:.2f}%  (paper: 99.8%)",
        f"multi-CMP overcount rate: "
        f"{platform.engine.overcount_rate * 100:.3f}%  (paper: 0.01%)",
    ]
    report("Sections 3.4/3.5: pipeline statistics", rows)

    assert store.n_captures > 5_000
    assert 0.15 < skip_rate < 0.65
    assert consistency > 0.97
    assert platform.engine.overcount_rate < 0.005


def test_missing_data_breakdown(benchmark, bench_study):
    """The Section 3.5 'Missing Data' census over the Tranco 10k."""
    world = bench_study.world
    tranco = bench_study.tranco

    def census():
        never_shared = unreachable = http_error = invalid = 0
        redirects = infrastructure = 0
        for true_rank in tranco.top_true_ranks(10_000).tolist():
            site = world.site(int(true_rank))
            if site.share_weight > 0:
                continue
            never_shared += 1
            if site.reachability == "unreachable":
                unreachable += 1
            elif site.reachability == "http-error":
                http_error += 1
            elif site.reachability == "invalid-response":
                invalid += 1
            elif site.redirects_to is not None:
                redirects += 1
            elif site.is_infrastructure:
                infrastructure += 1
        return dict(
            never_shared=never_shared,
            unreachable=unreachable,
            http_error=http_error,
            invalid=invalid,
            redirects=redirects,
            infrastructure=infrastructure,
        )

    stats = benchmark(census)
    paper = dict(
        never_shared=1076, unreachable=315, http_error=70, invalid=4,
        redirects=192, infrastructure=495,
    )
    report(
        "Section 3.5: never-shared Tranco-10k domains",
        [
            f"{key:<15} {value:>5}  (paper: {paper[key]})"
            for key, value in stats.items()
        ],
    )
    assert 700 < stats["never_shared"] < 1500
    assert stats["unreachable"] > stats["http_error"] > stats["invalid"]
    assert stats["infrastructure"] > 250
