"""Record the streaming-engine baseline to ``BENCH_streaming.json``.

Standalone companion to the ``repro.stream`` subsystem: follows one
month of the share stream through :class:`StreamingStudyEngine` and
records

* **sustained ingest throughput** -- events/sec and capture rows/sec
  over the whole follow run (the day loop, accumulator feeding and
  watermark finalization included);
* **query latency** -- p50/p90/p99 per endpoint, measured against a
  *live* :class:`QueryServer` over HTTP (the numbers come from the
  server's own ``/stats`` latency tracker, i.e. they are exactly what
  the service reports about itself).

Run from the repository root:

    PYTHONPATH=src python benchmarks/record_streaming.py

``--check`` (``make bench-streaming``) re-times the follow run and
fails if sustained ingest throughput regressed more than 20% against
the committed baseline; it never writes the JSON.
"""

import argparse
import datetime as dt
import json
import platform as platform_mod
import sys
import time
import urllib.request
from pathlib import Path

from repro.core.pipeline import Study, StudyConfig
from repro.stream import serve_engine

WINDOW = (dt.date(2020, 3, 1), dt.date(2020, 3, 31))
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"

#: ``--check`` fails when fresh ingest throughput drops below this
#: fraction of the committed baseline (a >20% regression).
FLOOR_FRACTION = 0.8
#: Timing repetitions for the follow run (best-of -- shields the floor
#: guard from scheduler noise on shared runners).
INGEST_REPS = 3
#: HTTP requests per endpoint for the latency percentiles.
QUERIES_PER_ENDPOINT = 50

ENDPOINTS = (
    "/healthz",
    "/adoption",
    "/adoption/live",
    "/marketshare",
    "/marketshare/live",
    "/vantage",
)


def _study() -> Study:
    return Study(
        StudyConfig(
            seed=7,
            n_domains=5_000,
            toplist_size=500,
            events_per_day=400,
            study_start=WINDOW[0],
            study_end=WINDOW[1],
        )
    )


def time_follow_run():
    """One cold follow run over the window; returns (engine, row)."""
    engine = _study().streaming_engine()
    start = time.perf_counter()
    engine.run_until(WINDOW[1])
    seconds = time.perf_counter() - start
    events = engine.platform.stats.events
    row = {
        "days": engine.days_ingested,
        "events": events,
        "rows": engine.rows_ingested,
        "seconds": round(seconds, 3),
        "events_per_second": round(events / seconds, 1),
        "rows_per_second": round(engine.rows_ingested / seconds, 1),
    }
    return engine, row


def time_follow_best(reps=INGEST_REPS):
    """Best-of-*reps* follow timing; keeps the last engine for serving."""
    best, engine = None, None
    for _ in range(reps):
        engine, row = time_follow_run()
        if best is None or row["seconds"] < best["seconds"]:
            best = row
    best["timing_reps"] = reps
    return engine, best


def measure_queries(engine, per_endpoint=QUERIES_PER_ENDPOINT):
    """Hammer a live query server; percentiles come from its ``/stats``."""
    server = serve_engine(engine)
    base = f"http://127.0.0.1:{server.port}"
    try:
        for endpoint in ENDPOINTS:
            for _ in range(per_endpoint):
                with urllib.request.urlopen(
                    base + endpoint, timeout=30
                ) as response:
                    response.read()
        with urllib.request.urlopen(base + "/stats", timeout=30) as response:
            stats = json.loads(response.read())
    finally:
        server.close()
    return stats["queries"]


def check_floor(out_path=OUT_PATH, floor=FLOOR_FRACTION):
    """Fail (exit 1) if ingest throughput regressed >20% vs *out_path*."""
    if not out_path.exists():
        print(f"no committed baseline at {out_path}; nothing to check")
        return 0
    committed = json.loads(out_path.read_text())["ingest"]
    committed_rate = committed["events_per_second"]
    _, fresh = time_follow_best()
    ratio = fresh["events_per_second"] / committed_rate
    verdict = "OK" if ratio >= floor else "FAIL"
    print(
        f"streaming ingest floor: fresh {fresh['events_per_second']:.1f} "
        f"events/s vs committed {committed_rate:.1f} ({ratio:.2f}x, floor "
        f"{floor:.2f}x) -- {verdict}"
    )
    if ratio < floor:
        print(
            "streaming ingest throughput regressed more than "
            f"{(1 - floor) * 100:.0f}% against BENCH_streaming.json; fix "
            "the regression or re-record the baseline with "
            "`PYTHONPATH=src python benchmarks/record_streaming.py`."
        )
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare fresh ingest throughput against the committed "
        "baseline and fail on a >20%% regression (writes nothing)",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_floor()

    engine, ingest = time_follow_best()
    print(f"  follow: {ingest['events']} events over {ingest['days']} days "
          f"in {ingest['seconds']:.2f}s "
          f"({ingest['events_per_second']:.0f} events/s)")
    queries = measure_queries(engine)
    for endpoint in ENDPOINTS:
        row = queries[endpoint]
        print(f"  {endpoint:<18} p50 {row['p50_ms']:7.3f}ms  "
              f"p99 {row['p99_ms']:7.3f}ms  (n={row['count']})")

    record = {
        "recorded_at": dt.datetime.now(dt.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform_mod.python_version(),
        "window_days": (WINDOW[1] - WINDOW[0]).days,
        "ingest": ingest,
        "queries": queries,
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"baseline written to {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
