"""Figure 10: the randomized Quantcast dialog experiment.

Paper: with a direct reject button the median user takes 3.2 s to accept
and 3.6 s to deny (Mann-Whitney U(1344, 279) = 166582, z = -2.93,
p < 0.01); replacing the reject button with "More Options" doubles the
median time to deny to 6.7 s (U(1152, 135) = 30494, z = -11.57,
p < 0.001) and raises the consent rate from 83% to 90%.

The bench times the full experiment: 2910 simulated EU visitors driving
the ``__cmp()`` API and producing spec-conformant consent strings.
"""

from benchmarks.conftest import report
from repro.core.timing import TimingStudy
from repro.users.behavior import DialogConfig
from repro.users.experiment import run_quantcast_experiment


def test_figure10_dialog_timing(benchmark):
    data = benchmark.pedantic(
        run_quantcast_experiment,
        kwargs={"n_visitors": 2910, "seed": 42},
        rounds=1, iterations=1,
    )
    study = TimingStudy(data)
    s = study.summary()

    rows = [
        f"visitors shown: {int(s['n-shown'])}   "
        f"timestamps: {data.n_timestamps:,} (paper: ~120,000)",
        f"direct-reject  accept median: {s['direct/accept-median']:.1f}s "
        f"(paper 3.2s)   reject median: {s['direct/reject-median']:.1f}s "
        f"(paper 3.6s)",
        f"more-options   accept median: {s['options/accept-median']:.1f}s"
        f"            reject median: {s['options/reject-median']:.1f}s "
        f"(paper 6.7s)",
        f"consent rate: {s['direct/consent-rate'] * 100:.0f}% -> "
        f"{s['options/consent-rate'] * 100:.0f}%  (paper: 83% -> 90%)",
        f"Mann-Whitney z: {s['direct/z']:.2f} (paper -2.93), "
        f"{s['options/z']:.2f} (paper -11.57)",
    ]
    report("Figure 10: dialog interaction times", rows)

    # The paper's shape: small-but-significant difference with a direct
    # reject button, huge difference without one.
    assert 2.5 < s["direct/accept-median"] < 4.0
    assert s["direct/reject-median"] > s["direct/accept-median"]
    assert 5.5 < s["options/reject-median"] < 8.5
    assert (
        s["options/reject-median"] > 1.6 * s["direct/reject-median"]
    )
    assert 0.78 < s["direct/consent-rate"] < 0.87
    assert 0.86 < s["options/consent-rate"] < 0.94
    assert s["direct/p"] < 0.01
    assert s["options/p"] < 0.001
    assert abs(s["options/z"]) > abs(s["direct/z"])
    benchmark.extra_info["summary"] = {k: round(v, 4) for k, v in s.items()}


def test_figure10_signal_integrity_audit(benchmark):
    """The Matte et al. cross-check the paper's related work motivates:
    every stored consent string in the experiment decodes and agrees
    with the logged decision -- and injected violations are caught.
    """
    from repro.core.violations import audit_experiment

    data = run_quantcast_experiment(n_visitors=2910, seed=42)
    clean_report = benchmark(audit_experiment, data.records)

    dirty = run_quantcast_experiment(
        n_visitors=2910, seed=42, violation_rate=0.12
    )
    dirty_report = audit_experiment(dirty.records)
    report(
        "Consent-signal integrity (decision vs stored TCF string)",
        [
            f"clean run: {clean_report.checked} signals checked, "
            f"{len(clean_report.violations)} violations",
            f"12%-violation injection: "
            f"{len(dirty_report.violations)} detected "
            f"({dirty_report.violation_rate * 100:.1f}% of signals)",
        ],
    )
    assert clean_report.violations == []
    assert dirty_report.of_kind("consent-after-optout")
