"""Ablations of the design choices DESIGN.md calls out.

Three estimator/measurement decisions the paper motivates but cannot
easily quantify on the live web; the synthetic world lets us ablate
them:

1. **interpolation + fade-out** (Section 3.2) -- without gap filling the
   longitudinal series collapses towards the per-day sampling density;
2. **dual vantage points** (Section 3.5) -- measuring from US cloud only
   (as single-vantage studies do) misses a large share of CMP usage;
3. **queue deduplication** (Section 3.4) -- disabling the 1h/48h rules
   inflates crawl volume without adding domains.
"""

import datetime as dt

from benchmarks.conftest import MAY_2020, report
from repro.core.adoption import AdoptionSeries
from repro.core.vantage import VantageTable
from repro.crawler.queue import CaptureQueue


def test_ablation_interpolation(benchmark, bench_study, longitudinal_store):
    """How much of the Figure 6 series the estimator contributes."""
    by_domain = longitudinal_store.by_domain()
    restrict = set(bench_study.toplist_domains)

    def build(interpolate, fade):
        return AdoptionSeries.from_store(
            by_domain, restrict,
            interpolate=interpolate, fade_out_days=fade,
        )

    full = benchmark.pedantic(
        build, args=(True, 30), rounds=1, iterations=1
    )
    no_interp = build(False, 30)
    no_fade = build(True, 0)
    bare = build(False, 0)

    probe = dt.date(2020, 5, 15)
    rows = [
        f"full estimator:        {full.total_on(probe)}",
        f"no interpolation:      {no_interp.total_on(probe)}",
        f"no 30-day fade-out:    {no_fade.total_on(probe)}",
        f"raw daily states only: {bare.total_on(probe)}",
    ]
    report("Ablation: interpolation + fade-out (CMP count on 2020-05-15)", rows)

    assert full.total_on(probe) > no_interp.total_on(probe)
    assert full.total_on(probe) > bare.total_on(probe)
    # Raw states undercount massively: most domains are not sampled on
    # any given day.
    assert bare.total_on(probe) < 0.6 * full.total_on(probe)


def test_ablation_single_vantage(benchmark, toplist_crawl_may):
    """What a US-cloud-only study would have concluded."""
    table = benchmark(VantageTable.from_crawl, toplist_crawl_may)
    us_only = table.total("us-cloud")
    best = table.total(table.best_config)
    missed = 1 - us_only / best
    report(
        "Ablation: single US-cloud vantage",
        [
            f"US cloud sees {us_only} CMP sites of {best} "
            f"({missed * 100:.0f}% missed)",
            "per-CMP miss rate: "
            + "  ".join(
                f"{key}={1 - table.count('us-cloud', key) / max(1, table.count(table.best_config, key)):.0%}"
                for key in ("onetrust", "quantcast", "trustarc")
            ),
        ],
    )
    assert 0.10 < missed < 0.40


def test_ablation_landing_pages_only(benchmark, bench_study):
    """Landing-page-only sampling vs subsite-aware sampling.

    The paper crawls arbitrary subsites from the share stream, which
    (a) catches CMPs on specific subsections and (b) occasionally hits
    pages without external scripts (privacy policies) -- handled by the
    1/3 heuristic. This ablation runs the same month with the stream
    forced to landing pages only.
    """
    from repro.core.adoption import AdoptionSeries
    from repro.crawler.platform import NetographPlatform, PlatformConfig
    from repro.crawler.seeds import SocialShareStream, StreamConfig

    world = bench_study.world

    def run(landing_only):
        stream = SocialShareStream(
            world,
            StreamConfig(
                seed=6,
                events_per_day=800,
                landing_page_prob=1.0 if landing_only else 0.35,
            ),
        )
        platform = NetographPlatform(
            world, stream=stream, config=PlatformConfig(seed=6)
        )
        store = platform.run(dt.date(2020, 4, 1), dt.date(2020, 5, 15))
        series = AdoptionSeries.from_store(store.by_domain())
        return store, series.counts_on(dt.date(2020, 5, 10))

    def subsite_only_detected(store):
        """CMP domains detected whose landing page carries no CMP."""
        detected = set(store.domains_with_cmp())
        hits = 0
        for domain in detected:
            site = world.site_by_domain(domain)
            if site is not None and not site.cmp_on_landing:
                hits += 1
        return hits

    subsites_store, subsites_counts = benchmark.pedantic(
        run, args=(False,), rounds=1, iterations=1
    )
    landing_store, landing_counts = run(True)
    subsite_hits = subsite_only_detected(subsites_store)
    landing_hits = subsite_only_detected(landing_store)
    report(
        "Ablation: landing pages only vs subsite sampling",
        [
            f"subsite sampling: {sum(subsites_counts.values())} CMP domains "
            f"from {subsites_store.n_captures:,} captures",
            f"landing only:     {sum(landing_counts.values())} CMP domains "
            f"from {landing_store.n_captures:,} captures",
            f"subsite-only CMP sites detected: {subsite_hits} "
            f"(subsite sampling) vs {landing_hits} (landing only)",
        ],
    )
    # The class of sites that embed the CMP only on subsites is
    # invisible to landing-page crawls -- the paper's reliability
    # argument for subsite sampling.
    assert subsite_hits > 0
    assert landing_hits == 0
    # Landing-only crawling also visits fewer URLs overall (one URL per
    # domain is throttled harder by the dedup rules).
    assert landing_store.n_captures < subsites_store.n_captures


def test_ablation_dom_vs_network_detection(benchmark, toplist_crawl_may):
    """Why the paper counts by network fingerprints, not DOM parsing.

    Runs both detectors over the EU-university captures: the DOM
    detector misses geo-gated dialogs, API-only custom UIs, and dialogs
    configured away -- the network pattern sees them all.
    """
    from repro.detect.domdetect import detect_cmp_from_dialog
    from repro.detect.engine import detect_cmp

    captures = toplist_crawl_may.captures_for("eu-univ-extended")

    def run_both():
        network = dom = 0
        for capture in captures.values():
            if detect_cmp(capture).cmp_key:
                network += 1
            if detect_cmp_from_dialog(capture.dom_dialog, capture.dialog_shown):
                dom += 1
        return network, dom

    network, dom = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report(
        "Ablation: DOM-based vs network-based CMP detection",
        [
            f"network fingerprints: {network} CMP sites",
            f"DOM/CSS fingerprints: {dom} CMP sites "
            f"({(1 - dom / network) * 100:.0f}% missed)",
        ],
    )
    assert dom < network
    assert network > 0


def test_ablation_queue_dedup(benchmark, bench_study):
    """Crawl-volume inflation without the dedup rules."""
    stream = bench_study.run_social_crawl  # noqa: F841  (documented intent)
    from repro.crawler.seeds import SocialShareStream, StreamConfig

    stream = SocialShareStream(
        bench_study.world, StreamConfig(seed=3, events_per_day=1_000)
    )

    def run_queue(dedup):
        queue = CaptureQueue()
        accepted = 0
        day = dt.date(2020, 4, 1)
        while day < dt.date(2020, 4, 15):
            for event in stream.events_for_day(day):
                if dedup:
                    accepted += queue.submit(event.url, event.at)
                else:
                    accepted += 1
            day += dt.timedelta(days=1)
        return accepted

    with_dedup = benchmark.pedantic(
        run_queue, args=(True,), rounds=1, iterations=1
    )
    without = run_queue(False)
    report(
        "Ablation: queue deduplication (two weeks @1000 URLs/day)",
        [
            f"with dedup:    {with_dedup:,} crawls",
            f"without dedup: {without:,} crawls "
            f"(+{(without / with_dedup - 1) * 100:.0f}%)",
        ],
    )
    assert without > 1.2 * with_dedup
