"""Figure 4: inter-CMP switching flows.

Paper: Quantcast and OneTrust both win and lose websites to each other;
Cookiebot is the true loser of inter-CMP competition, losing an order of
magnitude more websites than it gains.

The bench times the switch-flow extraction from the interpolated
longitudinal timelines of the full 2.5-year crawl.
"""

from benchmarks.conftest import report
from repro.cmps.base import cmp_by_key
from repro.core.switching import SwitchingFlows


def test_figure4_switching_flows(benchmark, longitudinal_series):
    flows = benchmark(
        SwitchingFlows.from_timelines, longitudinal_series.timelines
    )

    rows = [
        f"{cmp_by_key(key).name:<12} gained={gained:<4} lost={lost:<4} "
        f"net={net:+d}"
        for key, gained, lost, net in flows.rows()
    ]
    rows.append(f"total switches observed: {flows.total_switches}")
    rows += [
        f"flow {frm} -> {to}: {n}"
        for (frm, to), n in sorted(flows.flows.items(), key=lambda x: -x[1])[:8]
    ]
    report("Figure 4: inter-CMP switching", rows)

    assert flows.total_switches > 0
    # Cookiebot: the gateway CMP, bleeding customers.
    assert flows.lost("cookiebot") >= 3 * max(1, flows.gained("cookiebot"))
    assert flows.net("cookiebot") < 0
    # Quantcast and OneTrust trade customers in both directions.
    assert flows.flows[("quantcast", "onetrust")] > 0
    assert flows.flows[("onetrust", "quantcast")] > 0
    assert flows.gained("onetrust") > 0
    benchmark.extra_info["flows"] = {
        f"{a}->{b}": n for (a, b), n in flows.flows.items()
    }
